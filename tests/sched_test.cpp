// Tests for the work-stealing / weak-priority scheduler (src/sched) and the
// SBO closure type its spawn path runs on.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstring>
#include <functional>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "sched/chase_lev.hpp"
#include "sched/closure.hpp"
#include "sched/scheduler.hpp"
#include "sched/task.hpp"
#include "sync/dedicated_lock.hpp"

namespace pwss {
namespace {

// ---- Closure (SBO callable) -------------------------------------------------

// Capture blobs straddling the SBO boundary. An empty lambda still has
// size 1, so the padded capture keeps the total within/through the limit.
template <std::size_t Bytes>
sched::Closure make_padded_closure(std::atomic<int>& hits) {
  struct Padded {
    std::atomic<int>* hits;
    unsigned char pad[Bytes];
    void operator()() const { hits->fetch_add(1 + pad[0] * 0); }
  };
  Padded p{&hits, {}};
  std::memset(p.pad, 0, sizeof(p.pad));
  return sched::Closure(std::move(p));
}

TEST(Closure, CaptureSizesStraddlingSboBoundary) {
  // 8 (ptr) + pad; kInlineCapacity = 64.
  static_assert(sched::Closure::fits_inline<decltype([] {})>());
  std::atomic<int> hits{0};

  auto tiny = make_padded_closure<8>(hits);        // 16 bytes: inline
  auto exact = make_padded_closure<56>(hits);      // 64 bytes: inline
  auto over = make_padded_closure<57>(hits);       // 65 bytes: heap
  auto big = make_padded_closure<256>(hits);       // way over: heap
  EXPECT_TRUE(tiny.is_inline());
  EXPECT_TRUE(exact.is_inline());
  EXPECT_FALSE(over.is_inline());
  EXPECT_FALSE(big.is_inline());

  tiny();
  exact();
  over();
  big();
  EXPECT_EQ(hits.load(), 4);
}

TEST(Closure, MoveTransfersStateAndEmptiesSource) {
  int runs = 0;
  sched::Closure a([&runs] { ++runs; });
  sched::Closure b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(runs, 1);

  // Move assignment over a live closure destroys the old callable.
  auto counter = std::make_shared<int>(0);
  sched::Closure c([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  c = std::move(b);
  EXPECT_EQ(counter.use_count(), 1) << "old capture must be destroyed";
  c();
  EXPECT_EQ(runs, 2);
}

TEST(Closure, MoveOnlyCaptures) {
  // unique_ptr captures are impossible with std::function; the spawn path
  // must support them (tickets, batch state).
  auto value = std::make_unique<int>(41);
  int seen = 0;
  sched::Closure c([v = std::move(value), &seen]() mutable { seen = ++*v; });
  EXPECT_TRUE(c.is_inline());
  c();
  EXPECT_EQ(seen, 42);

  // Oversized move-only capture takes the heap path but still works.
  struct Big {
    std::unique_ptr<int> v;
    unsigned char pad[128];
  };
  sched::Closure h([big = Big{std::make_unique<int>(7), {}}, &seen] {
    seen += *big.v;
  });
  EXPECT_FALSE(h.is_inline());
  h();
  EXPECT_EQ(seen, 49);
}

TEST(Closure, DestroysCaptureOnReset) {
  auto counter = std::make_shared<int>(0);
  {
    sched::Closure c([counter] { ++*counter; });
    EXPECT_EQ(counter.use_count(), 2);
    c.reset();
    EXPECT_EQ(counter.use_count(), 1);
    EXPECT_FALSE(static_cast<bool>(c));
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(Scheduler, SpawnNodePoolRecyclesAcrossCycles) {
  // Declared before the scheduler: if the bounded wait below ever expires
  // with tasks still queued, ~Scheduler joins the workers while the
  // counter is still alive.
  std::atomic<int> remaining{2000};
  sched::Scheduler s(1);
  // Chained spawn/execute cycles: each task spawns the next from a worker,
  // so after warm-up every node comes from (and returns to) the free list.
  s.run_sync([&] {
    struct Chain {
      sched::Scheduler& s;
      std::atomic<int>& remaining;
      void operator()() const {
        if (remaining.fetch_sub(1) > 1) s.spawn(Chain{s, remaining});
      }
    };
    Chain{s, remaining}();
  });
  for (int i = 0; i < 20000000 && remaining.load() > 0; ++i) {
    std::this_thread::yield();
  }
  EXPECT_EQ(remaining.load(), 0);
  // The chain reuses one node; the pool must hold a few recycled nodes,
  // not thousands.
  EXPECT_GE(s.pooled_task_count(), 1u);
  EXPECT_LE(s.pooled_task_count(), 128u);
}

TEST(Scheduler, SpawnStressFromManyThreads) {
  // TSan-run stress (CI runs sched_test under -fsanitize=thread): external
  // threads and worker respawns hammer the injection queues and node pools
  // concurrently. The counter outlives the scheduler (declaration order)
  // so a timeout-path unwind cannot leave tasks writing to a dead atomic.
  constexpr int kExternalThreads = 4;
  constexpr int kSpawnsPerThread = 2000;
  std::atomic<int> executed{0};
  sched::Scheduler s(4);
  std::vector<std::thread> producers;
  for (int t = 0; t < kExternalThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kSpawnsPerThread; ++i) {
        const auto pri =
            (i + t) % 2 == 0 ? sched::Priority::kHigh : sched::Priority::kLow;
        if (i % 8 == 0) {
          // Respawn from the worker that executes this task: exercises the
          // free-list fast path concurrently with external spawns.
          s.spawn(
              [&] {
                s.spawn([&] { executed.fetch_add(1); });
                executed.fetch_add(1);
              },
              pri);
        } else {
          s.spawn([&] { executed.fetch_add(1); }, pri);
        }
      }
    });
  }
  for (auto& th : producers) th.join();
  const int expected =
      kExternalThreads * (kSpawnsPerThread + kSpawnsPerThread / 8);
  for (int i = 0; i < 20000000 && executed.load() < expected; ++i) {
    std::this_thread::yield();
  }
  EXPECT_EQ(executed.load(), expected);
}

TEST(Scheduler, LocalityStealDrainsUnbalancedBurst) {
  // Steal stress for the ring-distance visit order: a single worker's
  // deque receives a storm of tasks (spawned from inside one root task, so
  // they all land on that worker's own deque, not the injection queues)
  // and every other worker can make progress only by stealing. Each task
  // spins long enough that the burst cannot drain before thieves arrive,
  // so near-ring and far-ring steals both happen. Pins completion (no task
  // lost to the reordered probe sequence) and actual multi-worker
  // participation; TSan covers the racy side in CI.
  //
  // Completion is asserted on every round. Participation gets a few
  // retries: on a single-core box the owner can drain the whole burst
  // inside one OS quantum before any thief thread is ever scheduled, and
  // one such quantum-alignment round proves nothing about the steal path.
  constexpr int kBurst = 4000;
  constexpr int kAttempts = 6;
  bool stolen = false;
  for (int attempt = 0; attempt < kAttempts && !stolen; ++attempt) {
    std::atomic<int> executed{0};
    std::atomic<std::uint64_t> worker_mask{0};
    sched::Scheduler s(8);
    s.spawn([&] {
      for (int i = 0; i < kBurst; ++i) {
        s.spawn([&] {
          worker_mask.fetch_or(1ULL << (std::hash<std::thread::id>{}(
                                            std::this_thread::get_id()) %
                                        64));
          volatile int sink = 0;
          for (int j = 0; j < 500; ++j) sink = sink + j;
          executed.fetch_add(1);
        });
      }
      executed.fetch_add(1);
    });
    for (int i = 0; i < 200000000 && executed.load() < kBurst + 1; ++i) {
      std::this_thread::yield();
    }
    ASSERT_EQ(executed.load(), kBurst + 1) << "attempt " << attempt;
    stolen = std::popcount(worker_mask.load()) >= 2;
  }
  EXPECT_TRUE(stolen) << "burst drained without any stealing, " << kAttempts
                      << " rounds in a row";
}

TEST(ChaseLev, LifoForOwner) {
  sched::ChaseLevDeque dq;
  auto fn = [] {};
  sched::ForkTask a(fn), b(fn), c(fn);
  dq.push(&a);
  dq.push(&b);
  dq.push(&c);
  EXPECT_EQ(dq.pop(), &c);
  EXPECT_EQ(dq.pop(), &b);
  EXPECT_EQ(dq.pop(), &a);
  EXPECT_EQ(dq.pop(), nullptr);
}

TEST(ChaseLev, FifoForThief) {
  sched::ChaseLevDeque dq;
  auto fn = [] {};
  sched::ForkTask a(fn), b(fn);
  dq.push(&a);
  dq.push(&b);
  EXPECT_EQ(dq.steal(), &a);
  EXPECT_EQ(dq.steal(), &b);
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(ChaseLev, GrowsPastInitialCapacity) {
  sched::ChaseLevDeque dq(2);
  auto fn = [] {};
  std::vector<std::unique_ptr<sched::ForkTask>> tasks;
  for (int i = 0; i < 1000; ++i) {
    tasks.push_back(std::make_unique<sched::ForkTask>(fn));
    dq.push(tasks.back().get());
  }
  for (int i = 999; i >= 0; --i) EXPECT_EQ(dq.pop(), tasks[i].get());
}

TEST(ChaseLev, ConcurrentStealsSeeEachTaskOnce) {
  sched::ChaseLevDeque dq;
  constexpr int kTasks = 20000;
  auto fn = [] {};
  std::vector<std::unique_ptr<sched::ForkTask>> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back(std::make_unique<sched::ForkTask>(fn));
  }
  std::atomic<int> produced{0};
  std::atomic<int> consumed{0};
  std::atomic<bool> done_producing{false};

  std::thread owner([&] {
    for (int i = 0; i < kTasks; ++i) {
      dq.push(tasks[i].get());
      produced.fetch_add(1);
      if (i % 3 == 0) {
        if (dq.pop() != nullptr) consumed.fetch_add(1);
      }
    }
    done_producing = true;
    while (dq.pop() != nullptr) consumed.fetch_add(1);
  });
  std::vector<std::thread> thieves;
  for (int t = 0; t < 4; ++t) {
    thieves.emplace_back([&] {
      while (!done_producing.load() || !dq.empty()) {
        if (dq.steal() != nullptr) consumed.fetch_add(1);
      }
    });
  }
  owner.join();
  for (auto& th : thieves) th.join();
  // Drain any leftovers the racing threads missed.
  while (dq.steal() != nullptr) consumed.fetch_add(1);
  EXPECT_EQ(consumed.load(), kTasks);
}

TEST(Scheduler, RunSyncExecutesOnPool) {
  sched::Scheduler s(4);
  std::atomic<bool> ran{false};
  std::atomic<bool> was_worker{false};
  s.run_sync([&] {
    ran = true;
    was_worker = s.on_worker();
  });
  EXPECT_TRUE(ran);
  EXPECT_TRUE(was_worker);
  EXPECT_FALSE(s.on_worker());
}

TEST(Scheduler, SpawnEventuallyRuns) {
  sched::Scheduler s(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    s.spawn([&] { count.fetch_add(1); });
  }
  while (count.load() < 100) std::this_thread::yield();
  EXPECT_EQ(count.load(), 100);
}

TEST(Scheduler, ParallelInvokeRunsBothBranches) {
  sched::Scheduler s(4);
  std::atomic<int> total{0};
  s.run_sync([&] {
    auto f = [&] { total.fetch_add(1); };
    auto g = [&] { total.fetch_add(2); };
    s.parallel_invoke(sched::FnView(f), sched::FnView(g));
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(Scheduler, ParallelInvokeOffPoolDegradesToSequential) {
  sched::Scheduler s(2);
  int total = 0;
  auto f = [&] { total += 1; };
  auto g = [&] { total += 2; };
  s.parallel_invoke(sched::FnView(f), sched::FnView(g));  // not on a worker
  EXPECT_EQ(total, 3);
}

TEST(Scheduler, NestedForkJoinComputesFibonacci) {
  sched::Scheduler s(8);
  // Recursive fork/join exercises stealing + helping under real nesting.
  std::function<long(long)> fib = [&](long n) -> long {
    if (n < 2) return n;
    long a = 0, b = 0;
    auto left = [&] { a = fib(n - 1); };
    auto right = [&] { b = fib(n - 2); };
    s.parallel_invoke(sched::FnView(left), sched::FnView(right));
    return a + b;
  };
  long result = 0;
  s.run_sync([&] { result = fib(20); });
  EXPECT_EQ(result, 6765);
}

TEST(Scheduler, ParallelForCoversRangeExactlyOnce) {
  sched::Scheduler s(8);
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  s.parallel_for(0, kN, 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Scheduler, ParallelForEmptyAndTinyRanges) {
  sched::Scheduler s(2);
  int calls = 0;
  s.parallel_for(5, 5, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> sum{0};
  s.parallel_for(0, 3, 8, [&](std::size_t lo, std::size_t hi) {
    sum.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(Scheduler, ParallelForActuallyUsesMultipleWorkers) {
  sched::Scheduler s(4);
  std::atomic<std::uint64_t> worker_mask{0};
  s.parallel_for(0, 20000, 1, [&](std::size_t, std::size_t) {
    worker_mask.fetch_or(1ULL << (std::hash<std::thread::id>{}(
                                      std::this_thread::get_id()) %
                                  64));
    // Spin long enough that sleeping workers wake and steal.
    for (int i = 0; i < 2000; ++i) {
      std::atomic_signal_fence(std::memory_order_seq_cst);
    }
  });
  EXPECT_GT(std::popcount(worker_mask.load()), 1);
}

TEST(Scheduler, HighPriorityTasksRunUnderLoad) {
  sched::Scheduler s(4);
  std::atomic<bool> stop{false};
  std::atomic<int> low_running{0};
  // Saturate with low-priority spinners.
  for (int i = 0; i < 16; ++i) {
    s.spawn(
        [&] {
          low_running.fetch_add(1);
          while (!stop.load()) std::this_thread::yield();
        },
        sched::Priority::kLow);
  }
  while (low_running.load() < 2) std::this_thread::yield();
  std::atomic<bool> high_ran{false};
  s.spawn([&] { high_ran = true; }, sched::Priority::kHigh);
  // A high-preferring worker must pick it up even with low spam pending.
  for (int i = 0; i < 10000 && !high_ran.load(); ++i) {
    std::this_thread::yield();
  }
  stop = true;
  while (low_running.load() < 16) std::this_thread::yield();
  EXPECT_TRUE(high_ran.load());
}

TEST(Scheduler, ResumeSinkIntegratesWithDedicatedLock) {
  sched::Scheduler s(4);
  sync::DedicatedLock lock(2);
  std::atomic<int> completed{0};
  const auto sink = s.resume_sink(sched::Priority::kLow);
  s.run_sync([&] {
    auto hold_then_release = [&](std::size_t key) {
      lock.acquire(
          key,
          [&, key] {
            (void)key;
            completed.fetch_add(1);
            lock.release(sink);
          },
          sink);
    };
    auto a = [&] { hold_then_release(0); };
    auto b = [&] { hold_then_release(1); };
    s.parallel_invoke(sched::FnView(a), sched::FnView(b));
  });
  // Both continuations complete (possibly via parked resume on the pool).
  for (int i = 0; i < 100000 && completed.load() < 2; ++i) {
    std::this_thread::yield();
  }
  EXPECT_EQ(completed.load(), 2);
}

TEST(Scheduler, ManySchedulersConstructDestruct) {
  for (int i = 0; i < 10; ++i) {
    sched::Scheduler s(3);
    std::atomic<int> n{0};
    s.parallel_for(0, 1000, 16, [&](std::size_t lo, std::size_t hi) {
      n.fetch_add(static_cast<int>(hi - lo));
    });
    EXPECT_EQ(n.load(), 1000);
  }
}

TEST(Scheduler, WorkerCountDefaultsPositive) {
  sched::Scheduler s;
  EXPECT_GE(s.worker_count(), 1u);
}

}  // namespace
}  // namespace pwss
