// Durability subsystem tests (store/ + driver wiring): WAL round-trip
// and torn-tail truncation at every byte offset, snapshot round-trip
// with corruption refusal, recovery-gap refusal, idempotent replay,
// restart round-trips for every backend wiring, fault-injected sticky
// read-only degradation, and the fork-based crash matrix — seeded kill
// points swept across backends with acked-op-loss / half-applied-op /
// validate() assertions on every recovery (tests/crash_harness.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "crash_harness.hpp"
#include "driver/registry.hpp"
#include "store/durability.hpp"
#include "store/recovery.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"
#include "test_util.hpp"
#include "util/fault.hpp"

namespace pwss {
namespace {

using K = std::uint64_t;
using V = std::uint64_t;
using IntOp = core::Op<K, V>;
using IntWal = store::Wal<K, V>;
using IntWalReader = store::WalReader<K, V>;
using IntSnapWriter = store::SnapshotWriter<K, V>;
using IntSnapReader = store::SnapshotReader<K, V>;

/// mkdtemp scratch directory, recursively removed at scope exit.
class ScratchDir {
 public:
  ScratchDir() {
    std::string tmpl = ::testing::TempDir() + "pwss-durability-XXXXXX";
    tmpl.push_back('\0');
    char* got = ::mkdtemp(tmpl.data());
    EXPECT_NE(got, nullptr);
    path_ = got == nullptr ? "." : got;
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

std::vector<char> read_file(const std::string& path) {
  store::Fd fd(path, O_RDONLY);
  std::vector<char> bytes(fd.size());
  EXPECT_EQ(fd.read_some(bytes.data(), bytes.size()), bytes.size());
  return bytes;
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  store::Fd fd(path, O_WRONLY | O_CREAT | O_TRUNC);
  fd.write_all(bytes.data(), bytes.size());
}

/// A synced WAL with `n` insert records (seq 1..n, key i, value 100+i).
void write_wal(const std::string& path, std::size_t n) {
  IntWal wal;
  wal.open(path, 0, 0, 0);
  for (std::size_t i = 0; i < n; ++i) {
    wal.log(core::OpType::kInsert, i, 100 + i);
  }
  wal.sync(n);
  wal.close();
}

// ---- WAL format --------------------------------------------------------------

TEST(WalFormat, RoundTripAndAppendAfterReopen) {
  ScratchDir d;
  const std::string path = d.file("wal.log");
  write_wal(path, 10);

  auto s = IntWalReader::scan(path);
  EXPECT_FALSE(s.missing_or_empty);
  EXPECT_FALSE(s.torn_tail);
  EXPECT_EQ(s.start_seq, 0u);
  ASSERT_EQ(s.records.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(s.records[i].seq, i + 1);
    EXPECT_EQ(s.records[i].kind, core::OpType::kInsert);
    EXPECT_EQ(s.records[i].key, i);
    EXPECT_EQ(s.records[i].value, 100 + i);
  }

  // Reopen at the scanned position and keep appending: sequence numbers
  // continue, previous records are untouched.
  IntWal wal;
  wal.open(path, s.start_seq, s.records.back().seq, s.valid_bytes);
  EXPECT_EQ(wal.log(core::OpType::kErase, 3, 0), 11u);
  wal.sync(11);
  wal.close();
  auto s2 = IntWalReader::scan(path);
  ASSERT_EQ(s2.records.size(), 11u);
  EXPECT_EQ(s2.records.back().seq, 11u);
  EXPECT_EQ(s2.records.back().kind, core::OpType::kErase);
}

TEST(WalFormat, TornTailRecoveredByTruncationAtEveryByteOffset) {
  ScratchDir d;
  const std::string full_path = d.file("wal.log");
  write_wal(full_path, 5);
  const std::vector<char> full = read_file(full_path);
  const std::size_t rec = IntWal::kRecordBytes;
  const std::size_t base = full.size() - rec;  // end of the 4th record

  for (std::size_t off = 0; off < rec; ++off) {
    const std::string path = d.file("torn.log");
    write_file(path, std::vector<char>(full.begin(),
                                       full.begin() + base + off));
    auto s = IntWalReader::scan(path);
    ASSERT_EQ(s.records.size(), 4u) << "cut at +" << off;
    EXPECT_EQ(s.valid_bytes, base) << "cut at +" << off;
    EXPECT_EQ(s.torn_tail, off != 0) << "cut at +" << off;

    // The log must keep working after truncation: append, sync, rescan.
    IntWal wal;
    wal.open(path, s.start_seq, s.records.back().seq, s.valid_bytes);
    EXPECT_EQ(wal.log(core::OpType::kUpsert, 77, 7), 5u);
    wal.sync(5);
    wal.close();
    auto s2 = IntWalReader::scan(path);
    ASSERT_EQ(s2.records.size(), 5u) << "cut at +" << off;
    EXPECT_FALSE(s2.torn_tail) << "cut at +" << off;
    EXPECT_EQ(s2.records.back().key, 77u);
  }
}

TEST(WalFormat, CorruptMiddleRecordStopsScanAtLastGoodRecord) {
  ScratchDir d;
  const std::string path = d.file("wal.log");
  write_wal(path, 5);
  std::vector<char> bytes = read_file(path);
  // Flip one payload byte of the third record.
  const std::size_t rec = IntWal::kRecordBytes;
  const std::size_t hdr = bytes.size() - 5 * rec;
  bytes[hdr + 2 * rec + 12] ^= 0x40;
  write_file(path, bytes);

  auto s = IntWalReader::scan(path);
  EXPECT_EQ(s.records.size(), 2u);
  EXPECT_TRUE(s.torn_tail);
}

TEST(WalFormat, TornHeaderIsMissingButBadMagicRefuses) {
  ScratchDir d;
  // A 4-byte stub (crash during creation): fresh-log territory.
  write_file(d.file("stub.log"), {'P', 'W', 'S', 'S'});
  auto s = IntWalReader::scan(d.file("stub.log"));
  EXPECT_TRUE(s.missing_or_empty);
  EXPECT_TRUE(s.torn_tail);

  // A COMPLETE header with the wrong magic is foreign data, not a torn
  // artifact: refuse.
  write_file(d.file("foreign.log"), std::vector<char>(64, 'X'));
  EXPECT_THROW(IntWalReader::scan(d.file("foreign.log")), store::StoreError);
}

// ---- snapshot format ---------------------------------------------------------

std::vector<std::pair<K, V>> snapshot_entries(std::size_t n) {
  std::vector<std::pair<K, V>> entries;
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) entries.emplace_back(i * 3, i);
  return entries;
}

TEST(SnapshotFormat, MultiBlockRoundTrip) {
  ScratchDir d;
  const std::string path = d.file("snapshot");
  const auto entries = snapshot_entries(2500);  // three CRC blocks
  IntSnapWriter::write(path, 42, entries);
  auto loaded = IntSnapReader::load(path);
  EXPECT_EQ(loaded.seq, 42u);
  EXPECT_EQ(loaded.entries, entries);
}

TEST(SnapshotFormat, CorruptionRefusedWithPreciseReport) {
  ScratchDir d;
  const std::string path = d.file("snapshot");
  IntSnapWriter::write(path, 7, snapshot_entries(2500));
  const std::vector<char> good = read_file(path);

  auto expect_refused = [&](std::vector<char> bytes, const char* what) {
    write_file(path, bytes);
    EXPECT_THROW(IntSnapReader::load(path), store::StoreError) << what;
  };

  std::vector<char> flipped = good;
  flipped[sizeof(store::SnapshotHeader) + 8 + 100] ^= 0x01;
  expect_refused(flipped, "payload bit flip");

  expect_refused(std::vector<char>(good.begin(), good.end() - 5),
                 "truncated payload");

  std::vector<char> bad_header = good;
  bad_header[9] ^= 0x01;  // inside the version/crc region
  expect_refused(bad_header, "header corruption");

  // Undamaged file still loads (the refusals above were not stickiness).
  write_file(path, good);
  EXPECT_EQ(IntSnapReader::load(path).entries.size(), 2500u);
}

// ---- recovery ----------------------------------------------------------------

TEST(Recovery, WalAheadOfSnapshotRefused) {
  ScratchDir d;
  const std::string dir = d.file("store");
  store::ensure_dir(dir);
  // A WAL whose start_seq claims a snapshot at seq 5 existed — but there
  // is no snapshot: ops 1..5 are unrecoverable, refuse to serve.
  IntWal wal;
  wal.open(store::wal_path(dir), 5, 5, 0);
  wal.log(core::OpType::kInsert, 1, 1);
  wal.sync(6);
  wal.close();
  EXPECT_THROW((store::recover_dir<K, V>(dir)), store::StoreError);
}

TEST(Recovery, SnapshotPlusWalSuffixReplaysIdempotently) {
  ScratchDir d;
  const std::string dir = d.file("store");
  store::ensure_dir(dir);
  // Snapshot covers seq 2 = {1:10, 2:20}; the un-rotated WAL holds seq
  // 1..4 — records 1 and 2 are already covered and must be skipped.
  IntSnapWriter::write(store::snapshot_path(dir), 2, {{1, 10}, {2, 20}});
  IntWal wal;
  wal.open(store::wal_path(dir), 0, 0, 0);
  wal.log(core::OpType::kInsert, 1, 10);
  wal.log(core::OpType::kInsert, 2, 20);
  wal.log(core::OpType::kErase, 1, 0);
  wal.log(core::OpType::kUpsert, 5, 50);
  wal.sync(4);
  wal.close();

  auto rec = store::recover_dir<K, V>(dir);
  EXPECT_EQ(rec.snapshot_seq, 2u);
  EXPECT_EQ(rec.entries.size(), 2u);
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_EQ(rec.records[0].seq, 3u);
  EXPECT_EQ(rec.wal_last_seq, 4u);

  std::map<K, V> state;
  auto apply = [&](const std::vector<IntOp>& batch) {
    for (const auto& op : batch) testutil::reference_apply(state, op);
  };
  EXPECT_EQ(store::replay_into(rec, apply), 2u);
  const std::map<K, V> expect{{2, 20}, {5, 50}};
  EXPECT_EQ(state, expect);
  // Replaying the same suffix again converges to the same state
  // (upsert/erase are idempotent).
  store::replay_into(rec, apply);
  EXPECT_EQ(state, expect);
}

// ---- driver wiring: restart round trips --------------------------------------

const char* const kDurableBackends[] = {"m0", "m1", "m2", "sharded:m1",
                                        "locked"};

driver::Options durable_opts(const std::string& dir,
                             store::DurabilityMode mode) {
  driver::Options o;
  o.durability = mode;
  o.durability_dir = dir;
  return o;
}

std::map<K, V> run_scripted(driver::Driver<K, V>& drv, std::uint64_t seed,
                            std::size_t count, std::map<K, V> oracle = {}) {
  const auto ops = testutil::scripted_ops<K, V>(seed, count, 128, false);
  for (std::size_t i = 0; i < ops.size(); i += 64) {
    const std::vector<IntOp> batch(
        ops.begin() + i, ops.begin() + std::min(ops.size(), i + 64));
    drv.run(batch);
    for (const auto& op : batch) testutil::reference_apply(oracle, op);
  }
  return oracle;
}

void expect_matches_oracle(driver::Driver<K, V>& drv,
                           const std::map<K, V>& oracle, const char* what) {
  EXPECT_EQ(drv.validate(), "") << what;
  std::map<K, V> got;
  for (const auto& [k, v] : drv.export_sorted()) got[k] = v;
  EXPECT_EQ(got, oracle) << what;
}

TEST(DriverDurability, SyncRoundTripAcrossRestartEveryBackend) {
  for (const std::string backend : kDurableBackends) {
    ScratchDir d;
    const auto opts =
        durable_opts(d.file("store"), store::DurabilityMode::kSync);
    std::map<K, V> oracle;
    {
      auto drv = driver::make_driver<K, V>(backend, opts);
      oracle = run_scripted(*drv, 11, 400);
      const auto s = drv->stats();
      EXPECT_TRUE(s.durable) << backend;
      EXPECT_GT(s.wal_appends, 0u) << backend;
      EXPECT_GT(s.wal_fsyncs, 0u) << backend;
    }
    auto drv = driver::make_driver<K, V>(backend, opts);
    expect_matches_oracle(*drv, oracle, backend.c_str());
    EXPECT_GT(drv->stats().recovered_ops, 0u) << backend;
  }
}

TEST(DriverDurability, CheckpointCompactsAndRecoverySeesBothHalves) {
  for (const std::string backend : kDurableBackends) {
    ScratchDir d;
    const auto opts =
        durable_opts(d.file("store"), store::DurabilityMode::kSync);
    std::map<K, V> oracle;
    {
      auto drv = driver::make_driver<K, V>(backend, opts);
      oracle = run_scripted(*drv, 21, 300);
      EXPECT_EQ(drv->checkpoint(), "") << backend;
      oracle = run_scripted(*drv, 22, 300, std::move(oracle));
      EXPECT_GT(drv->stats().checkpoints, 0u) << backend;
    }
    auto drv = driver::make_driver<K, V>(backend, opts);
    expect_matches_oracle(*drv, oracle, backend.c_str());
    const auto s = drv->stats();
    // Both recovery sources contributed: the snapshot's entries and the
    // post-checkpoint WAL suffix.
    EXPECT_GT(s.recovered_entries, 0u) << backend;
    EXPECT_GT(s.recovered_ops, 0u) << backend;
  }
}

TEST(DriverDurability, AsyncModeRecoversAfterCleanClose) {
  ScratchDir d;
  const auto opts =
      durable_opts(d.file("store"), store::DurabilityMode::kAsync);
  std::map<K, V> oracle;
  {
    auto drv = driver::make_driver<K, V>("m1", opts);
    oracle = run_scripted(*drv, 31, 500);
    // Async promises little mid-run, but close() flushes and fsyncs.
  }
  auto drv = driver::make_driver<K, V>("m1", opts);
  expect_matches_oracle(*drv, oracle, "m1/async");
}

TEST(DriverDurability, OffModeWritesNothingAndReportsNotDurable) {
  ScratchDir d;
  driver::Options opts;  // durability defaults to kOff
  opts.durability_dir = d.file("never-created");
  auto drv = driver::make_driver<K, V>("m1", opts);
  run_scripted(*drv, 41, 200);
  EXPECT_FALSE(drv->stats().durable);
  EXPECT_FALSE(drv->read_only());
  EXPECT_FALSE(store::file_exists(opts.durability_dir));
  EXPECT_THROW(drv->checkpoint(), std::logic_error);
}

TEST(DriverDurability, BlockingPathCountsAppendsPerMutation) {
  ScratchDir d;
  auto drv = driver::make_driver<K, V>(
      "m1", durable_opts(d.file("store"), store::DurabilityMode::kSync));
  for (std::uint64_t i = 0; i < 32; ++i) {
    EXPECT_TRUE(drv->insert(i, i));
  }
  EXPECT_NE(drv->search(7), std::nullopt);  // reads are never logged
  const auto s = drv->stats();
  EXPECT_EQ(s.wal_appends, 32u);
  EXPECT_GE(s.wal_fsyncs, 1u);
  EXPECT_GE(s.admitted, 33u);
}

// ---- fault injection: sticky read-only degradation ---------------------------

TEST(DriverDurability, InjectedWalFaultDrivesStickyReadOnly) {
  if (!util::faultpt::kCompiled) {
    GTEST_SKIP() << "build without -DPWSS_FAULT_INJECT=ON";
  }
  for (const char* site : {"wal.append", "wal.fsync"}) {
    for (const std::string backend : {"m1", "sharded:m1"}) {
      ScratchDir d;
      auto drv = driver::make_driver<K, V>(
          backend,
          durable_opts(d.file("store"), store::DurabilityMode::kSync));
      for (std::uint64_t i = 0; i < 16; ++i) ASSERT_TRUE(drv->insert(i, i));

      util::faultpt::force(site, 1);
      // Sharded backends route by key hash: keep mutating until the
      // forced failure lands in whichever shard draws the short straw.
      core::ResultStatus hit = core::ResultStatus::kInserted;
      for (std::uint64_t i = 100; i < 164; ++i) {
        hit = drv->run_blocking(IntOp::upsert(i, i)).status;
        if (hit == core::ResultStatus::kReadOnly) break;
      }
      util::faultpt::clear_forced();
      EXPECT_EQ(hit, core::ResultStatus::kReadOnly) << site << " " << backend;
      EXPECT_TRUE(drv->read_only()) << site << " " << backend;
      EXPECT_TRUE(drv->stats().read_only) << site << " " << backend;

      // Reads keep serving; the structure stayed sound; the degradation
      // is sticky even though the forced fault is long gone.
      EXPECT_EQ(drv->search(7), std::uint64_t{7}) << site << " " << backend;
      EXPECT_EQ(drv->validate(), "") << site << " " << backend;

      // A degraded bulk batch splits: reads execute, mutations shed.
      const std::vector<IntOp> batch{IntOp::search(7), IntOp::upsert(7, 99),
                                     IntOp::search(999)};
      const auto results = drv->run(batch);
      // A sharded driver degrades per shard — only ops routed to the
      // failed shard shed, so probe the shard that actually degraded by
      // checking at least the whole-driver flag plus read liveness.
      EXPECT_EQ(results[0].status, core::ResultStatus::kFound)
          << site << " " << backend;
      EXPECT_EQ(results[2].status, core::ResultStatus::kNotFound)
          << site << " " << backend;
    }
  }
}

TEST(DriverDurability, InjectedSnapshotFaultFailsCheckpointAndDegrades) {
  if (!util::faultpt::kCompiled) {
    GTEST_SKIP() << "build without -DPWSS_FAULT_INJECT=ON";
  }
  ScratchDir d;
  auto drv = driver::make_driver<K, V>(
      "m1", durable_opts(d.file("store"), store::DurabilityMode::kSync));
  for (std::uint64_t i = 0; i < 16; ++i) ASSERT_TRUE(drv->insert(i, i));
  util::faultpt::force("snapshot.write", 1);
  const std::string err = drv->checkpoint();
  util::faultpt::clear_forced();
  EXPECT_NE(err, "");
  EXPECT_TRUE(drv->read_only());
  EXPECT_EQ(drv->run_blocking(IntOp::upsert(1, 2)).status,
            core::ResultStatus::kReadOnly);
  EXPECT_EQ(drv->search(7), std::uint64_t{7});
}

// ---- observability: PWSS_FAULT_LIST dump surface -----------------------------

TEST(FaultList, DumpSitesReportsFaultAndSchedulePoints) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  util::faultpt::dump_sites(f);
  std::rewind(f);
  char buf[4096];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  buf[n] = '\0';
  std::fclose(f);
  const std::string out(buf);
  EXPECT_NE(out.find("fault/schedule-point site dump"), std::string::npos);
  EXPECT_NE(out.find("fault points"), std::string::npos);
  EXPECT_NE(out.find("schedule points"), std::string::npos);
}

// ---- crash matrix ------------------------------------------------------------

TEST(CrashMatrix, SeededKillPointsRecoverAcrossBackends) {
  struct Kill {
    const char* site;
    std::uint64_t nth;
  };
  // nth > 1 moves the same site deeper into the workload; under sync
  // durability every mutation syncs, so the wal sites hit once per op.
  const Kill kills[] = {
      {"wal.append.before", 1},     {"wal.append.before", 7},
      {"wal.write.partial", 1},     {"wal.write.partial", 7},
      {"wal.commit.after_write", 1}, {"wal.commit.after_write", 7},
      {"wal.commit.after_fsync", 1}, {"wal.commit.after_fsync", 7},
      {"snapshot.after_rename", 1}, {"checkpoint.done", 1},
  };
  const char* const backends[] = {"m0", "m1", "m2", "sharded:m1"};

  int fired = 0;
  int total = 0;
  std::uint64_t seed = 1000;
  for (const char* backend : backends) {
    for (const Kill& kill : kills) {
      ScratchDir d;
      testutil::CrashScenario sc;
      sc.backend = backend;
      sc.site = kill.site;
      sc.nth = kill.nth;
      sc.seed = ++seed;
      sc.total_ops = 120;
      sc.checkpoint_at = 60;
      const int code =
          testutil::recover_and_check(sc, d.file("store"), d.file("acks"));
      ++total;
      if (code == store::crashpt::kCrashExitCode) ++fired;
      if (HasFatalFailure()) return;
    }
  }
  // Every scenario's site lies on a path the workload provably executes.
  EXPECT_EQ(fired, total) << "some armed kill points never fired";
}

TEST(CrashMatrix, TornSnapshotTmpLeavesLiveSnapshotIntact) {
  ScratchDir d;
  const std::string path = d.file("snapshot");
  const pid_t pid = ::fork();
  if (pid == 0) {
    store::crashpt::arm("snapshot.write.partial", 1);
    IntSnapWriter::write(path, 10, snapshot_entries(100));  // one block: lands
    IntSnapWriter::write(path, 20, snapshot_entries(2500));  // dies mid-.tmp
    ::_exit(0);  // unreachable when the crash point fires
  }
  ASSERT_GT(pid, 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), store::crashpt::kCrashExitCode);

  // The crash hit mid-.tmp: the live name still holds the old complete
  // snapshot, and recovery never looks at the torn temp file.
  auto loaded = IntSnapReader::load(path);
  EXPECT_EQ(loaded.seq, 10u);
  EXPECT_EQ(loaded.entries.size(), 100u);
  EXPECT_TRUE(store::file_exists(path + ".tmp"));
}

}  // namespace
}  // namespace pwss
