#pragma once
// Shared helpers for the gtest suites.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/ops.hpp"
#include "util/rng.hpp"

namespace pwss::testutil {

/// gtest test names allow only [A-Za-z0-9_]; "sharded:m1" -> "sharded_m1".
inline std::string gtest_safe(std::string name) {
  for (char& c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    if (!ok) c = '_';
  }
  return name;
}

/// Sequential protocol-v2 oracle: applies one Op to a std::map in
/// submission order, with lower_bound/upper_bound realizing the ordered
/// kinds. Valid reference for every backend: per-key program order is
/// preserved, point ops on distinct keys commute, and ordered kinds are
/// phase-sliced to observe exactly the preceding point ops.
template <typename K, typename V>
core::Result<V, K> reference_apply(std::map<K, V>& ref,
                                   const core::Op<K, V>& op) {
  using core::OpType;
  using core::ResultStatus;
  core::Result<V, K> r;
  switch (op.type) {
    case OpType::kSearch: {
      const auto it = ref.find(op.key);
      if (it != ref.end()) {
        r.status = ResultStatus::kFound;
        r.value = it->second;
      }
      break;
    }
    case OpType::kInsert:
    case OpType::kUpsert:
      r.status = ref.count(op.key) != 0 ? ResultStatus::kUpdated
                                        : ResultStatus::kInserted;
      ref[op.key] = op.value;
      break;
    case OpType::kErase: {
      const auto it = ref.find(op.key);
      if (it != ref.end()) {
        r.status = ResultStatus::kErased;
        r.value = it->second;
        ref.erase(it);
      }
      break;
    }
    case OpType::kPredecessor: {
      auto it = ref.lower_bound(op.key);
      if (it != ref.begin()) {
        --it;
        r.status = ResultStatus::kFound;
        r.matched_key = it->first;
        r.value = it->second;
      }
      break;
    }
    case OpType::kSuccessor: {
      const auto it = ref.upper_bound(op.key);
      if (it != ref.end()) {
        r.status = ResultStatus::kFound;
        r.matched_key = it->first;
        r.value = it->second;
      }
      break;
    }
    case OpType::kRangeCount: {
      r.status = ResultStatus::kFound;
      if (!(op.key2 < op.key)) {
        r.count = static_cast<std::uint64_t>(std::distance(
            ref.lower_bound(op.key), ref.upper_bound(op.key2)));
      }
      break;
    }
  }
  return r;
}

/// Full-surface comparison of one backend result against the oracle's.
template <typename K, typename V>
void expect_result_eq(const core::Result<V, K>& got,
                      const core::Result<V, K>& want, const char* what,
                      std::size_t i) {
  ASSERT_EQ(static_cast<int>(got.status), static_cast<int>(want.status))
      << what << " op " << i;
  ASSERT_EQ(got.value, want.value) << what << " op " << i;
  ASSERT_EQ(got.matched_key, want.matched_key) << what << " op " << i;
  ASSERT_EQ(got.count, want.count) << what << " op " << i;
}

/// Deterministic mixed-op script over a bounded key universe. With
/// `with_ordered`, roughly a third of the ops are the v2 ordered kinds
/// (predecessor/successor/range-count) plus occasional upserts.
template <typename K, typename V>
std::vector<core::Op<K, V>> scripted_ops(std::uint64_t seed, std::size_t count,
                                         std::uint64_t universe,
                                         bool with_ordered) {
  util::Xoshiro256 rng(seed);
  std::vector<core::Op<K, V>> ops;
  ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto key = static_cast<K>(rng.bounded(universe));
    const auto value = static_cast<V>(seed * 100000 + i);
    switch (rng.bounded(with_ordered ? 9 : 4)) {
      case 0:
      case 1:
        ops.push_back(core::Op<K, V>::insert(key, value));
        break;
      case 2:
        ops.push_back(core::Op<K, V>::erase(key));
        break;
      case 3:
        ops.push_back(core::Op<K, V>::search(key));
        break;
      case 4:
        ops.push_back(core::Op<K, V>::upsert(key, value));
        break;
      case 5:
        ops.push_back(core::Op<K, V>::predecessor(key));
        break;
      case 6:
        ops.push_back(core::Op<K, V>::successor(key));
        break;
      default:
        ops.push_back(core::Op<K, V>::range_count(
            key, static_cast<K>(key + rng.bounded(universe / 4 + 1))));
    }
  }
  return ops;
}

}  // namespace pwss::testutil
