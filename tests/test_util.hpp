#pragma once
// Shared helpers for the gtest suites.

#include <string>

namespace pwss::testutil {

/// gtest test names allow only [A-Za-z0-9_]; "sharded:m1" -> "sharded_m1".
inline std::string gtest_safe(std::string name) {
  for (char& c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    if (!ok) c = '_';
  }
  return name;
}

}  // namespace pwss::testutil
