// Wire-protocol unit tests (src/net/protocol.hpp) + the frame fuzzer of
// the robustness satellite: torn, oversized, bad-magic, bad-CRC, and
// bad-version frames against a LIVE server, asserting each bad peer is
// refused cleanly (an error frame, then close) while other connections
// keep being served — one hostile client never takes the server down.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/ops.hpp"
#include "driver/registry.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "util/rng.hpp"

namespace {

using namespace pwss;
using net::FrameReader;
using net::MsgType;
using net::ProtoError;
using net::WireOp;
using net::WireResult;
using core::OpType;
using core::ResultStatus;

// ---- stable wire codes: the both-directions table test ----------------------

// The wire values are part of the protocol: renumbering one is a
// protocol break, so each is pinned HERE, independent of enum order.
TEST(WireCodes, StatusTableIsPinnedBothDirections) {
  const struct {
    ResultStatus mem;
    std::uint8_t wire;
  } table[] = {
      {ResultStatus::kNotFound, 0x00},  {ResultStatus::kFound, 0x01},
      {ResultStatus::kInserted, 0x02},  {ResultStatus::kUpdated, 0x03},
      {ResultStatus::kErased, 0x04},    {ResultStatus::kOverloaded, 0x10},
      {ResultStatus::kTimedOut, 0x11},  {ResultStatus::kCancelled, 0x12},
      {ResultStatus::kUnsupported, 0x13}, {ResultStatus::kReadOnly, 0x14},
  };
  for (const auto& row : table) {
    EXPECT_EQ(static_cast<std::uint8_t>(net::to_wire(row.mem)), row.wire);
    const auto back = net::status_from_wire(row.wire);
    ASSERT_TRUE(back.has_value()) << "wire byte " << int(row.wire);
    EXPECT_EQ(*back, row.mem);
  }
  // Unknown bytes must be refused, never misread as a nearby status.
  for (const std::uint8_t bad : {0x05, 0x0F, 0x15, 0x7F, 0xFF}) {
    EXPECT_FALSE(net::status_from_wire(bad).has_value())
        << "byte " << int(bad);
  }
}

TEST(WireCodes, OpTypeTableIsPinnedBothDirections) {
  const struct {
    OpType mem;
    std::uint8_t wire;
  } table[] = {
      {OpType::kSearch, 0x01},      {OpType::kInsert, 0x02},
      {OpType::kErase, 0x03},       {OpType::kUpsert, 0x04},
      {OpType::kPredecessor, 0x05}, {OpType::kSuccessor, 0x06},
      {OpType::kRangeCount, 0x07},
  };
  for (const auto& row : table) {
    EXPECT_EQ(static_cast<std::uint8_t>(net::to_wire(row.mem)), row.wire);
    const auto back = net::op_from_wire(row.wire);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, row.mem);
  }
  EXPECT_FALSE(net::op_from_wire(0x00).has_value());
  EXPECT_FALSE(net::op_from_wire(0x08).has_value());
  EXPECT_FALSE(net::op_from_wire(0xFF).has_value());
}

// Every status survives a response encode -> frame -> decode round trip
// exactly (the satellite's "client round-trips them exactly").
TEST(WireCodes, EveryStatusRoundTripsThroughResponseFrames) {
  for (const ResultStatus s :
       {ResultStatus::kNotFound, ResultStatus::kFound, ResultStatus::kInserted,
        ResultStatus::kUpdated, ResultStatus::kErased,
        ResultStatus::kOverloaded, ResultStatus::kTimedOut,
        ResultStatus::kCancelled, ResultStatus::kUnsupported,
        ResultStatus::kReadOnly}) {
    WireResult r;
    r.status = s;
    if (s == ResultStatus::kFound) {
      r.value = 42;
      r.matched_key = 7;
      r.count = 3;
    }
    std::vector<std::uint8_t> buf;
    net::encode_response(buf, 99, r);
    FrameReader reader;
    reader.feed(buf.data(), buf.size());
    const auto payload = reader.next();
    ASSERT_TRUE(payload.has_value());
    const auto resp = net::decode_response(*payload);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->req_id, 99u);
    EXPECT_EQ(resp->result.status, r.status);
    EXPECT_EQ(resp->result.value, r.value);
    EXPECT_EQ(resp->result.matched_key, r.matched_key);
    EXPECT_EQ(resp->result.count, r.count);
  }
}

// ---- encode/decode round trips ----------------------------------------------

TEST(Protocol, HandshakeFramesRoundTrip) {
  std::vector<std::uint8_t> buf;
  net::encode_hello(buf);
  net::Welcome w;
  w.supports_ordered = true;
  w.window = 64;
  w.backend = "sharded:m1";
  net::encode_welcome(buf, w);
  net::encode_goodbye(buf);

  FrameReader reader;
  reader.feed(buf.data(), buf.size());
  auto hello = reader.next();
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(net::peek_type(*hello), MsgType::kHello);
  EXPECT_EQ(net::decode_hello(*hello), ProtoError::kNone);

  auto welcome = reader.next();
  ASSERT_TRUE(welcome.has_value());
  const auto got = net::decode_welcome(*welcome);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->version, net::kProtocolVersion);
  EXPECT_TRUE(got->supports_ordered);
  EXPECT_EQ(got->window, 64u);
  EXPECT_EQ(got->backend, "sharded:m1");

  auto goodbye = reader.next();
  ASSERT_TRUE(goodbye.has_value());
  EXPECT_EQ(net::peek_type(*goodbye), MsgType::kGoodbye);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.error(), ProtoError::kNone);
}

TEST(Protocol, RequestRoundTripsIncludingRelativeTimeout) {
  net::Request r;
  r.req_id = 0xDEADBEEF12345678ull;
  r.op = OpType::kRangeCount;
  r.key = 10;
  r.key2 = 99;
  r.value = 7;
  r.timeout_ns = 5'000'000;
  std::vector<std::uint8_t> buf;
  net::encode_request(buf, r);
  FrameReader reader;
  reader.feed(buf.data(), buf.size());
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  const auto got = net::decode_request(*payload);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->req_id, r.req_id);
  EXPECT_EQ(got->op, r.op);
  EXPECT_EQ(got->key, r.key);
  EXPECT_EQ(got->key2, r.key2);
  EXPECT_EQ(got->value, r.value);
  EXPECT_EQ(got->timeout_ns, r.timeout_ns);

  // to_op re-anchors the relative timeout onto the local clock.
  const std::int64_t before = core::now_ns();
  const WireOp op = net::to_op(*got);
  EXPECT_GE(op.deadline_ns, before + 5'000'000);
  net::Request no_timeout = r;
  no_timeout.timeout_ns = 0;
  EXPECT_EQ(net::to_op(no_timeout).deadline_ns, 0);
}

TEST(Protocol, ErrorFrameCarriesMessage) {
  std::vector<std::uint8_t> buf;
  net::encode_error(buf, "bad magic");
  FrameReader reader;
  reader.feed(buf.data(), buf.size());
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(net::peek_type(*payload), MsgType::kError);
  EXPECT_EQ(net::decode_error(*payload), std::optional<std::string>("bad magic"));
}

// ---- FrameReader: torn delivery, bad frames ---------------------------------

// TCP guarantees nothing about chunk boundaries: byte-at-a-time delivery
// must yield exactly the same frames.
TEST(FrameReaderTest, ByteAtATimeDeliveryYieldsEveryFrame) {
  std::vector<std::uint8_t> buf;
  net::encode_hello(buf);
  net::Welcome w;
  w.backend = "m2";
  net::encode_welcome(buf, w);
  FrameReader reader;
  int frames = 0;
  for (const std::uint8_t b : buf) {
    reader.feed(&b, 1);
    while (reader.next().has_value()) ++frames;
  }
  EXPECT_EQ(frames, 2);
  EXPECT_EQ(reader.error(), ProtoError::kNone);
}

TEST(FrameReaderTest, TruncatedFrameWaitsWithoutError) {
  std::vector<std::uint8_t> buf;
  net::encode_hello(buf);
  FrameReader reader;
  reader.feed(buf.data(), buf.size() - 3);  // torn mid-payload
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.error(), ProtoError::kNone);  // needs bytes, not broken
  reader.feed(buf.data() + buf.size() - 3, 3);
  EXPECT_TRUE(reader.next().has_value());
}

TEST(FrameReaderTest, CorruptPayloadIsBadCrc) {
  std::vector<std::uint8_t> buf;
  net::encode_hello(buf);
  buf.back() ^= 0x01;  // flip one payload bit
  FrameReader reader;
  reader.feed(buf.data(), buf.size());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.error(), ProtoError::kBadCrc);
}

// An oversized length prefix must be refused from the HEADER alone —
// before any wait for (or allocation of) a 4GiB body.
TEST(FrameReaderTest, OversizedLengthPrefixRefusedFromHeaderAlone) {
  const std::uint32_t len = net::kMaxFrameBytes + 1;
  const std::uint32_t crc = 0;
  std::vector<std::uint8_t> buf(net::kFrameHeaderBytes);
  std::memcpy(buf.data(), &len, sizeof(len));
  std::memcpy(buf.data() + 4, &crc, sizeof(crc));
  FrameReader reader;
  reader.feed(buf.data(), buf.size());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.error(), ProtoError::kOversized);
}

TEST(Protocol, HelloRejectsBadMagicAndVersionPrecisely) {
  // Hand-build hellos with a foreign magic / future version.
  std::vector<std::uint8_t> bad_magic;
  net::append_frame(bad_magic, [](std::vector<std::uint8_t>& b) {
    net::detail::put<std::uint8_t>(b, 0x01);
    net::detail::put<std::uint32_t>(b, 0x12345678u);
    net::detail::put<std::uint32_t>(b, net::kProtocolVersion);
  });
  std::vector<std::uint8_t> bad_version;
  net::append_frame(bad_version, [](std::vector<std::uint8_t>& b) {
    net::detail::put<std::uint8_t>(b, 0x01);
    net::detail::put<std::uint32_t>(b, net::kMagic);
    net::detail::put<std::uint32_t>(b, net::kProtocolVersion + 7);
  });
  for (const auto& [bytes, want] :
       {std::pair(bad_magic, ProtoError::kBadMagic),
        std::pair(bad_version, ProtoError::kBadVersion)}) {
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    const auto payload = reader.next();
    ASSERT_TRUE(payload.has_value());  // framing is fine; content is not
    EXPECT_EQ(net::decode_hello(*payload), want);
  }
}

TEST(Protocol, TruncatedPayloadsDecodeToNullopt) {
  std::vector<std::uint8_t> buf;
  net::Request r;
  r.op = OpType::kInsert;
  net::encode_request(buf, r);
  FrameReader reader;
  reader.feed(buf.data(), buf.size());
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  // Every strict prefix of the payload must decode to nullopt, not UB —
  // the Cursor's bounds checks are the last line of defence.
  for (std::size_t n = 0; n < payload->size(); ++n) {
    EXPECT_FALSE(net::decode_request(payload->substr(0, n)).has_value())
        << "prefix " << n;
  }
  // Trailing junk is malformed too (exhausted() check).
  const std::string extended = std::string(*payload) + "x";
  EXPECT_FALSE(net::decode_request(extended).has_value());
}

// ---- frame fuzzer against a live server -------------------------------------

class NetFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    driver_ = driver::make_driver<std::uint64_t, std::uint64_t>("m1");
    net::ServerConfig cfg;
    cfg.tcp_addr = "127.0.0.1:0";
    server_ = std::make_unique<net::Server>(*driver_, cfg);
    addr_ = "127.0.0.1:" + std::to_string(server_->tcp_port());
  }

  std::unique_ptr<driver::Driver<std::uint64_t, std::uint64_t>> driver_;
  std::unique_ptr<net::Server> server_;
  std::string addr_;
};

// Reads until EOF with a bounded buffer — the server must CLOSE a refused
// connection, so this terminates.
bool drain_until_eof(int fd) {
  char buf[4096];
  for (int rounds = 0; rounds < 64 * 1024; ++rounds) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) return true;
    if (n < 0) return errno != EINTR ? true : false;
  }
  return false;
}

TEST_F(NetFuzzTest, BadFramesAreRefusedWhileOtherConnectionsKeepServing) {
  // A healthy pipelined client stays connected through every attack.
  net::Client healthy = net::Client::dial_tcp(addr_);
  ASSERT_TRUE(healthy.insert(1, 100));

  const auto attack = [&](const std::vector<std::uint8_t>& bytes) {
    net::OwnedFd fd = net::connect_tcp(net::TcpAddr::parse(addr_));
    try {
      net::write_all(fd.get(), bytes.data(), bytes.size());
    } catch (const net::NetError&) {
      // Server may already have closed on us mid-send; that IS refusal.
    }
    EXPECT_TRUE(drain_until_eof(fd.get()));
  };

  // Crafted attacks: each named bad-frame class from the satellite.
  {
    std::vector<std::uint8_t> b;  // bad magic hello
    net::append_frame(b, [](std::vector<std::uint8_t>& p) {
      net::detail::put<std::uint8_t>(p, 0x01);
      net::detail::put<std::uint32_t>(p, 0xBAD0BAD0u);
      net::detail::put<std::uint32_t>(p, net::kProtocolVersion);
    });
    attack(b);
  }
  {
    std::vector<std::uint8_t> b;  // bad version hello
    net::append_frame(b, [](std::vector<std::uint8_t>& p) {
      net::detail::put<std::uint8_t>(p, 0x01);
      net::detail::put<std::uint32_t>(p, net::kMagic);
      net::detail::put<std::uint32_t>(p, 999);
    });
    attack(b);
  }
  {
    std::vector<std::uint8_t> b;  // oversized length prefix
    const std::uint32_t len = net::kMaxFrameBytes + 1, crc = 0;
    b.resize(net::kFrameHeaderBytes);
    std::memcpy(b.data(), &len, 4);
    std::memcpy(b.data() + 4, &crc, 4);
    attack(b);
  }
  {
    std::vector<std::uint8_t> b;  // bad CRC
    net::encode_hello(b);
    b.back() ^= 0xFF;
    attack(b);
  }
  {
    std::vector<std::uint8_t> b;  // request before hello (kUnexpected)
    net::encode_request(b, net::Request{});
    attack(b);
  }
  {
    // Torn frame then abrupt close: no refusal needed — the server just
    // sees EOF mid-frame and reaps the connection without counting an
    // error (close the socket ourselves, no drain).
    std::vector<std::uint8_t> b;
    net::encode_hello(b);
    b.resize(b.size() - 3);
    net::OwnedFd fd = net::connect_tcp(net::TcpAddr::parse(addr_));
    net::write_all(fd.get(), b.data(), b.size());
    fd.reset();
  }

  // Random garbage: seeded, so a failure replays. Write-then-close (no
  // drain): garbage that parses as a small length prefix leaves the
  // server legitimately waiting for more bytes — our close is what ends
  // those connections, and the reactor must reap them without fuss.
  util::Xoshiro256 rng(0xF422);
  for (int round = 0; round < 32; ++round) {
    std::vector<std::uint8_t> b(rng.bounded(256) + 1);
    for (auto& byte : b) byte = static_cast<std::uint8_t>(rng());
    net::OwnedFd fd = net::connect_tcp(net::TcpAddr::parse(addr_));
    try {
      net::write_all(fd.get(), b.data(), b.size());
    } catch (const net::NetError&) {
    }
    fd.reset();
  }

  // The healthy connection never noticed.
  EXPECT_EQ(healthy.search(1), std::optional<std::uint64_t>(100));
  ASSERT_TRUE(healthy.insert(2, 200));
  EXPECT_EQ(healthy.search(2), std::optional<std::uint64_t>(200));
  healthy.close();

  // The crafted refusals were counted before their sockets closed (the
  // attack() drain ends only after the server refuses), so this is not
  // racing the reactor.
  EXPECT_GE(server_->stats().protocol_errors, 5u);
  server_->stop();  // reaps the abruptly-closed garbage connections too
  EXPECT_EQ(server_->stats().connections_active, 0u);
  EXPECT_EQ(driver_->validate(), "");
}

}  // namespace
