// Counting-allocator fixture for the allocation-lean hot paths: replaces
// global operator new/delete with counting versions and asserts the
// properties the perf work relies on:
//   * steady-state spawn/execute cycles perform ZERO allocations for
//     captures within the Closure SBO (pooled task nodes, intrusive
//     injection queues, inline closures);
//   * repeated M1 execute_batch calls allocate strictly less once the
//     per-instance BatchScratch arena is warm;
//   * M2's steady-state per-op allocation count stays bounded (printed for
//     the perf trajectory; see BENCH_baseline.json / PR notes).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <new>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "core/m1_map.hpp"
#include "core/m2_map.hpp"
#include "core/segment.hpp"
#include "driver/registry.hpp"
#include "sort/esort.hpp"
#include "sched/scheduler.hpp"
#include "tree/jtree.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc{};
}

void* counted_aligned_alloc(std::size_t sz, std::size_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (al < sizeof(void*)) al = sizeof(void*);
  if (posix_memalign(&p, al, sz ? sz : 1) != 0) throw std::bad_alloc{};
  return p;
}
}  // namespace

void* operator new(std::size_t sz) { return counted_alloc(sz); }
void* operator new[](std::size_t sz) { return counted_alloc(sz); }
void* operator new(std::size_t sz, std::align_val_t al) {
  return counted_aligned_alloc(sz, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t sz, std::align_val_t al) {
  return counted_aligned_alloc(sz, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace pwss {
namespace {

using IntOp = core::Op<int, int>;

TEST(AllocStats, SpawnSteadyStateIsAllocationFree) {
  // Single worker: the whole chain runs on one thread, so the counter
  // window [after warm-up, end] sees only the spawn path itself. The
  // atomics precede the scheduler so in-flight tasks can never outlive
  // them, even on a timeout-path unwind.
  constexpr int kWarm = 64;
  constexpr int kTotal = 4096;
  std::atomic<int> step{0};
  std::atomic<std::uint64_t> start_allocs{0};
  std::atomic<std::uint64_t> end_allocs{0};
  std::atomic<bool> done{false};
  sched::Scheduler s(1);

  struct Chain {
    sched::Scheduler* s;
    std::atomic<int>* step;
    std::atomic<std::uint64_t>* start_allocs;
    std::atomic<std::uint64_t>* end_allocs;
    std::atomic<bool>* done;

    void operator()() const {
      const int i = step->fetch_add(1) + 1;
      if (i == kWarm) start_allocs->store(alloc_count());
      if (i >= kTotal) {
        end_allocs->store(alloc_count());
        done->store(true, std::memory_order_release);
        return;
      }
      s->spawn(Chain{*this});
    }
  };
  static_assert(sched::Closure::fits_inline<Chain>(),
                "chain capture must take the SBO path");

  s.spawn(Chain{&s, &step, &start_allocs, &end_allocs, &done});
  for (int i = 0; i < 200000000 && !done.load(std::memory_order_acquire);
       ++i) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(done.load());
  EXPECT_EQ(end_allocs.load(), start_allocs.load())
      << "steady-state spawn/execute cycles must not allocate "
      << "(" << kTotal - kWarm << " spawns, "
      << end_allocs.load() - start_allocs.load() << " allocations)";
}

TEST(AllocStats, JTreeWarmPoolInsertEraseChurnIsAllocationFree) {
  // The acceptance bar for the node-pool work: once the pool is warm,
  // steady-state point insert/erase churn on a pooled JTree performs ZERO
  // heap allocations — split/join rebalance in place, the inserted node
  // comes off a free list, the erased node goes back on one.
  tree::JTree<std::uint64_t, std::uint64_t>::Pool pool;
  tree::JTree<std::uint64_t, std::uint64_t> t(&pool);
  constexpr std::uint64_t kUniverse = 1 << 14;
  for (std::uint64_t i = 0; i < kUniverse / 2; ++i) t.insert(i * 2, i);
  util::Xoshiro256 rng(3);
  // Warm-up churn so every shard/chunk the steady loop touches exists.
  for (int i = 0; i < 4096; ++i) {
    const std::uint64_t k = rng.bounded(kUniverse);
    t.insert(k, k);
    t.erase(k);
  }
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 16384; ++i) {
    const std::uint64_t k = rng.bounded(kUniverse);
    t.insert(k, k);
    t.erase(k);
  }
  EXPECT_EQ(alloc_count() - before, 0u)
      << "warm-pool JTree insert/erase churn must be allocation-free";
}

TEST(AllocStats, JTreeWarmPoolBatchChurnIsAllocationFree) {
  // Batch shape: multi_extract returns nodes to the pool, multi_insert
  // re-draws them; with warmed output buffers the whole cycle is heap-free.
  tree::JTree<std::uint64_t, std::uint64_t>::Pool pool;
  tree::JTree<std::uint64_t, std::uint64_t> t(&pool);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> items;
  for (std::uint64_t i = 0; i < 4096; ++i) items.emplace_back(i, i);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 4096; ++i) keys.push_back(i);
  std::vector<std::optional<std::uint64_t>> out;
  t.multi_insert(items);
  t.multi_extract(keys, out);
  t.multi_insert(items);  // warm: buffers sized, pool at high-water
  const std::uint64_t before = alloc_count();
  for (int round = 0; round < 4; ++round) {
    t.multi_extract(keys, out);
    t.multi_insert(items);
  }
  EXPECT_EQ(alloc_count() - before, 0u)
      << "warm-pool multi_extract/multi_insert churn must be allocation-free";
}

TEST(AllocStats, FlatSegmentProbeIsAllocationFree) {
  // Front segments (S[0..2]) live in the flat sorted-array representation;
  // probing one is a branchless binary search over two parallel arrays and
  // must never touch the heap.
  core::Segment<std::uint64_t, std::uint64_t> seg;
  ASSERT_TRUE(seg.is_flat());
  for (std::uint64_t i = 0; i < 16; ++i) {
    seg.insert_front({i * 7, i, 0});
  }
  ASSERT_TRUE(seg.is_flat());
  const std::uint64_t before = alloc_count();
  std::uint64_t found = 0;
  for (int round = 0; round < 4096; ++round) {
    for (std::uint64_t i = 0; i < 16; ++i) {
      found += seg.peek(i * 7) != nullptr;
      found += seg.peek(i * 7 + 3) != nullptr;  // miss path
    }
    found += seg.range_count(0, 200);
    found += seg.predecessor(50).first != nullptr;
    found += seg.successor(50).first != nullptr;
  }
  EXPECT_EQ(alloc_count() - before, 0u)
      << "flat-segment probes must be allocation-free (" << found << ")";
}

TEST(AllocStats, FlatSegmentWarmChurnIsAllocationFree) {
  // The flat arrays reserve to kFlatSegmentMax on first use, so warm
  // point insert/extract churn below the promote threshold is in-place
  // memmove over the arrays — zero heap traffic, zero pool traffic.
  core::Segment<std::uint64_t, std::uint64_t> seg;
  for (std::uint64_t i = 0; i < 16; ++i) {
    seg.insert_front({i * 7, i, 0});  // first insert warms the reserve
  }
  util::Xoshiro256 rng(17);
  const std::uint64_t before = alloc_count();
  for (int round = 0; round < 8192; ++round) {
    const std::uint64_t k = rng.bounded(16) * 7;
    auto item = seg.extract(k);
    ASSERT_TRUE(item.has_value());
    seg.insert_front(std::move(*item));
  }
  ASSERT_TRUE(seg.is_flat());
  EXPECT_EQ(alloc_count() - before, 0u)
      << "warm flat-segment insert/extract churn must be allocation-free";
}

TEST(AllocStats, M1BatchAllocsDropOnceArenaIsWarm) {
  // Sequential M1 (null scheduler) for determinism. The first batch of a
  // given shape grows the arena; later batches of the same shape must
  // allocate strictly less (scratch capacity is reused; what remains is
  // tree-node churn and the returned results).
  core::M1Map<int, int> m;
  std::vector<IntOp> warm;
  warm.reserve(4096);
  for (int i = 0; i < 4096; ++i) warm.push_back(IntOp::insert(i, i));
  m.execute_batch(warm);

  util::Xoshiro256 rng(5);
  std::vector<IntOp> batch;
  batch.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    batch.push_back(IntOp::search(static_cast<int>(rng.bounded(4096))));
  }

  const std::uint64_t before_first = alloc_count();
  m.execute_batch(batch);
  const std::uint64_t first = alloc_count() - before_first;

  std::uint64_t steady_total = 0;
  constexpr int kSteadyRounds = 4;
  for (int r = 0; r < kSteadyRounds; ++r) {
    const std::uint64_t before = alloc_count();
    m.execute_batch(batch);
    steady_total += alloc_count() - before;
  }
  const std::uint64_t steady = steady_total / kSteadyRounds;

  std::printf("[allocs] m1 4096-op search batch: first=%llu steady=%llu "
              "(%.1f%% of first)\n",
              static_cast<unsigned long long>(first),
              static_cast<unsigned long long>(steady),
              100.0 * static_cast<double>(steady) /
                  static_cast<double>(first ? first : 1));
  EXPECT_LT(steady, first)
      << "warm-arena batches must allocate less than the arena-growing one";
}

TEST(AllocStats, M1SteadyStateBatchWithReusedResultsIsAllocationLean) {
  // The full batch loop with every reuse layer on: instance arena (PR 3),
  // node pools, the caller-owned results buffer, and — closing the last
  // gap — the PESort pivot machinery. The ~690 steady allocations/batch
  // this shape used to pay (misattributed to "esort position lists" in
  // earlier notes; a backtrace census pinned them to ppivot's per-level
  // medians/block vectors and three_way_partition's per-call count
  // vectors) are gone: medians live in PESortScratch sliced like the
  // classification bytes, block medians on the stack, and the sequential
  // partition path uses scalar counters. Measured 4/batch on the PR
  // machine; the bound leaves headroom for stdlib variance while
  // catching any reintroduced per-level allocation.
  core::M1Map<int, int> m;
  std::vector<IntOp> warm;
  warm.reserve(4096);
  for (int i = 0; i < 4096; ++i) warm.push_back(IntOp::insert(i, i));
  m.execute_batch(warm);

  util::Xoshiro256 rng(11);
  std::vector<IntOp> batch;
  batch.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    batch.push_back(IntOp::search(static_cast<int>(rng.bounded(4096))));
  }
  std::vector<core::Result<int>> results;
  m.execute_batch(std::span<const IntOp>(batch), results);  // arena warm-up
  m.execute_batch(std::span<const IntOp>(batch), results);

  std::uint64_t steady_total = 0;
  constexpr int kRounds = 4;
  for (int r = 0; r < kRounds; ++r) {
    const std::uint64_t before = alloc_count();
    m.execute_batch(std::span<const IntOp>(batch), results);
    steady_total += alloc_count() - before;
  }
  const std::uint64_t steady = steady_total / kRounds;
  std::printf("[allocs] m1 4096-op search batch, all reuse layers on: "
              "steady=%llu allocations/batch\n",
              static_cast<unsigned long long>(steady));
  EXPECT_LE(steady, 64u)
      << "steady-state M1 batch allocations regressed — check the node "
      << "pools, the arena, the results-buffer reuse, and the PESort "
      << "scratch (medians/partition counters)";
}

TEST(AllocStats, DriverRunReusesResultsBuffer) {
  // The driver-level bulk path with a caller-owned buffer: after the first
  // run sizes everything, later runs of the same shape must allocate
  // strictly less than a fresh-vector run.
  auto d = driver::make_driver<std::uint64_t, std::uint64_t>("m1");
  std::vector<core::Op<std::uint64_t, std::uint64_t>> batch;
  for (std::uint64_t i = 0; i < 2048; ++i) {
    batch.push_back(core::Op<std::uint64_t, std::uint64_t>::insert(i, i));
  }
  d->run(batch);
  batch.clear();
  util::Xoshiro256 rng(17);
  for (int i = 0; i < 2048; ++i) {
    batch.push_back(core::Op<std::uint64_t, std::uint64_t>::search(
        rng.bounded(2048)));
  }
  std::vector<core::Result<std::uint64_t>> out;
  d->run(batch, out);  // warm-up: sizes out + backend scratch
  d->run(batch, out);

  const std::uint64_t before_fresh = alloc_count();
  auto fresh = d->run(batch);  // allocating overload, for contrast
  const std::uint64_t fresh_allocs = alloc_count() - before_fresh;

  const std::uint64_t before_reuse = alloc_count();
  d->run(batch, out);
  const std::uint64_t reuse_allocs = alloc_count() - before_reuse;

  std::printf("[allocs] driver 2048-op run: fresh=%llu reused=%llu\n",
              static_cast<unsigned long long>(fresh_allocs),
              static_cast<unsigned long long>(reuse_allocs));
  ASSERT_EQ(fresh.size(), out.size());
  EXPECT_LT(reuse_allocs, fresh_allocs)
      << "run(ops, out) must reuse the results buffer across batches";
}

TEST(AllocStats, M2SteadyStateOpAllocationsBounded) {
  // M2's spawn-per-tick pipeline used to pay a std::function + task node
  // per activation and continuation; with pooled SBO closures the per-op
  // allocation budget is dominated by tree-node churn. Record the number
  // (for the perf trajectory) and bound it so a regression reintroducing
  // per-spawn allocation trips the test.
  sched::Scheduler s(2);
  core::M2Map<int, int> m(s, 2);
  for (int i = 0; i < 2048; ++i) m.insert(i, i);
  m.quiesce();

  util::Xoshiro256 rng(9);
  constexpr int kOps = 4096;
  // Warm one round so buffers/pools reach steady state.
  for (int i = 0; i < kOps / 4; ++i) {
    m.search(static_cast<int>(rng.bounded(2048)));
  }
  m.quiesce();

  const std::uint64_t before = alloc_count();
  for (int i = 0; i < kOps; ++i) {
    m.search(static_cast<int>(rng.bounded(2048)));
  }
  m.quiesce();
  const std::uint64_t per_op = (alloc_count() - before) / kOps;
  std::printf("[allocs] m2 steady-state search: ~%llu allocations/op\n",
              static_cast<unsigned long long>(per_op));
  // Measured ~37/op on the PR machine with node pools + SBO front-chain
  // continuations (~45/op after the PR-3 closure work, ~61/op before it);
  // the count shifts with how ops get bunched, so the bound leaves
  // headroom while still catching a reintroduced per-activation or
  // per-continuation allocation.
  EXPECT_LE(per_op, 52u)
      << "per-op allocation budget regressed — check the spawn path, the "
      << "continuation captures, and the node pools";
}

TEST(AllocStats, M2BulkBatchReusesTicketBlockAcrossBatches) {
  // The bulk path used to construct a fresh std::vector<OpTicket> per
  // execute_batch; the instance ticket arena now reuses the block, so a
  // steady single bulk caller's per-batch overhead is the backend work
  // alone. Same-shape batches after warm-up must allocate strictly less
  // than the first (arena-growing) one.
  //
  // The batch re-searches a NARROW key range (64 of the 2048 keys): the
  // first batch drags those keys to the working-set front (and grows the
  // ticket arena); steady batches then shuffle recency within the front
  // segments, which is allocation-free once the pools are warm. A wide
  // key range would instead make every batch a fresh front-segment
  // cascade whose backend allocations drown the ticket-arena signal this
  // test exists to pin.
  sched::Scheduler s(2);
  core::M2Map<int, int> m(s, 2);
  for (int i = 0; i < 2048; ++i) m.insert(i, i);
  m.quiesce();

  util::Xoshiro256 rng(21);
  std::vector<IntOp> batch;
  for (int i = 0; i < 512; ++i) {
    batch.push_back(IntOp::search(static_cast<int>(rng.bounded(64))));
  }
  std::vector<core::Result<int>> results;

  const std::uint64_t before_first = alloc_count();
  m.execute_batch(std::span<const IntOp>(batch), results);
  const std::uint64_t first = alloc_count() - before_first;

  // Quiesce OUTSIDE the measured windows: the pipeline may still be
  // draining a previous batch's groups when execute_batch returns, and
  // letting that drain bleed into the next window adds machine-dependent
  // noise. Reduce with min, not mean — "some warm batch allocates less
  // than the arena-growing first" is the reuse property, and a
  // reintroduced per-batch ticket block lifts every round including the
  // minimum.
  m.quiesce();
  std::uint64_t steady = std::numeric_limits<std::uint64_t>::max();
  constexpr int kRounds = 4;
  for (int r = 0; r < kRounds; ++r) {
    const std::uint64_t before = alloc_count();
    m.execute_batch(std::span<const IntOp>(batch), results);
    steady = std::min(steady, alloc_count() - before);
    m.quiesce();
  }
  std::printf("[allocs] m2 512-op bulk batch: first=%llu steady(min)=%llu\n",
              static_cast<unsigned long long>(first),
              static_cast<unsigned long long>(steady));
  EXPECT_LT(steady, first)
      << "warm ticket-arena batches must allocate less than the first";
}

TEST(AllocStats, EsortPositionChainsShareOneArena) {
  // The fix for the duplicate-position spill: positions past the two
  // inline slots chain through ONE shared arena, so 256 keys x 16
  // occurrences cost amortized vector-doubling allocations (O(log total)),
  // not one heap spill per hot key (>= 256 with the old SmallVec values).
  std::vector<sort::detail::EsortPositions> lists(256);
  std::vector<sort::detail::EsortChainNode> chain;
  const std::uint64_t before = alloc_count();
  for (std::size_t occ = 0; occ < 16; ++occ) {
    for (std::size_t k = 0; k < lists.size(); ++k) {
      sort::detail::esort_append(lists[k], occ * lists.size() + k, chain);
    }
  }
  const std::uint64_t used = alloc_count() - before;
  std::printf("[allocs] esort position chains, 256 keys x 16: %llu\n",
              static_cast<unsigned long long>(used));
  EXPECT_LE(used, 16u) << "per-key spill allocations are back";
  // The chains replay each key's positions in order.
  for (std::size_t k = 0; k < lists.size(); ++k) {
    std::vector<std::size_t> got{lists[k].inline_pos[0], lists[k].inline_pos[1]};
    for (std::uint32_t n = lists[k].head; n != sort::detail::kEsortNil;
         n = chain[n].next) {
      got.push_back(chain[n].pos);
    }
    ASSERT_EQ(got.size(), 16u);
    for (std::size_t occ = 0; occ < 16; ++occ) {
      ASSERT_EQ(got[occ], occ * lists.size() + k);
    }
  }
}

}  // namespace
}  // namespace pwss
