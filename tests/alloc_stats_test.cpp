// Counting-allocator fixture for the allocation-lean hot paths: replaces
// global operator new/delete with counting versions and asserts the
// properties the perf work relies on:
//   * steady-state spawn/execute cycles perform ZERO allocations for
//     captures within the Closure SBO (pooled task nodes, intrusive
//     injection queues, inline closures);
//   * repeated M1 execute_batch calls allocate strictly less once the
//     per-instance BatchScratch arena is warm;
//   * M2's steady-state per-op allocation count stays bounded (printed for
//     the perf trajectory; see BENCH_baseline.json / PR notes).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "core/m1_map.hpp"
#include "core/m2_map.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc{};
}

void* counted_aligned_alloc(std::size_t sz, std::size_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (al < sizeof(void*)) al = sizeof(void*);
  if (posix_memalign(&p, al, sz ? sz : 1) != 0) throw std::bad_alloc{};
  return p;
}
}  // namespace

void* operator new(std::size_t sz) { return counted_alloc(sz); }
void* operator new[](std::size_t sz) { return counted_alloc(sz); }
void* operator new(std::size_t sz, std::align_val_t al) {
  return counted_aligned_alloc(sz, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t sz, std::align_val_t al) {
  return counted_aligned_alloc(sz, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace pwss {
namespace {

using IntOp = core::Op<int, int>;

TEST(AllocStats, SpawnSteadyStateIsAllocationFree) {
  // Single worker: the whole chain runs on one thread, so the counter
  // window [after warm-up, end] sees only the spawn path itself. The
  // atomics precede the scheduler so in-flight tasks can never outlive
  // them, even on a timeout-path unwind.
  constexpr int kWarm = 64;
  constexpr int kTotal = 4096;
  std::atomic<int> step{0};
  std::atomic<std::uint64_t> start_allocs{0};
  std::atomic<std::uint64_t> end_allocs{0};
  std::atomic<bool> done{false};
  sched::Scheduler s(1);

  struct Chain {
    sched::Scheduler* s;
    std::atomic<int>* step;
    std::atomic<std::uint64_t>* start_allocs;
    std::atomic<std::uint64_t>* end_allocs;
    std::atomic<bool>* done;

    void operator()() const {
      const int i = step->fetch_add(1) + 1;
      if (i == kWarm) start_allocs->store(alloc_count());
      if (i >= kTotal) {
        end_allocs->store(alloc_count());
        done->store(true, std::memory_order_release);
        return;
      }
      s->spawn(Chain{*this});
    }
  };
  static_assert(sched::Closure::fits_inline<Chain>(),
                "chain capture must take the SBO path");

  s.spawn(Chain{&s, &step, &start_allocs, &end_allocs, &done});
  for (int i = 0; i < 200000000 && !done.load(std::memory_order_acquire);
       ++i) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(done.load());
  EXPECT_EQ(end_allocs.load(), start_allocs.load())
      << "steady-state spawn/execute cycles must not allocate "
      << "(" << kTotal - kWarm << " spawns, "
      << end_allocs.load() - start_allocs.load() << " allocations)";
}

TEST(AllocStats, M1BatchAllocsDropOnceArenaIsWarm) {
  // Sequential M1 (null scheduler) for determinism. The first batch of a
  // given shape grows the arena; later batches of the same shape must
  // allocate strictly less (scratch capacity is reused; what remains is
  // tree-node churn and the returned results).
  core::M1Map<int, int> m;
  std::vector<IntOp> warm;
  warm.reserve(4096);
  for (int i = 0; i < 4096; ++i) warm.push_back(IntOp::insert(i, i));
  m.execute_batch(warm);

  util::Xoshiro256 rng(5);
  std::vector<IntOp> batch;
  batch.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    batch.push_back(IntOp::search(static_cast<int>(rng.bounded(4096))));
  }

  const std::uint64_t before_first = alloc_count();
  m.execute_batch(batch);
  const std::uint64_t first = alloc_count() - before_first;

  std::uint64_t steady_total = 0;
  constexpr int kSteadyRounds = 4;
  for (int r = 0; r < kSteadyRounds; ++r) {
    const std::uint64_t before = alloc_count();
    m.execute_batch(batch);
    steady_total += alloc_count() - before;
  }
  const std::uint64_t steady = steady_total / kSteadyRounds;

  std::printf("[allocs] m1 4096-op search batch: first=%llu steady=%llu "
              "(%.1f%% of first)\n",
              static_cast<unsigned long long>(first),
              static_cast<unsigned long long>(steady),
              100.0 * static_cast<double>(steady) /
                  static_cast<double>(first ? first : 1));
  EXPECT_LT(steady, first)
      << "warm-arena batches must allocate less than the arena-growing one";
}

TEST(AllocStats, M2SteadyStateOpAllocationsBounded) {
  // M2's spawn-per-tick pipeline used to pay a std::function + task node
  // per activation and continuation; with pooled SBO closures the per-op
  // allocation budget is dominated by tree-node churn. Record the number
  // (for the perf trajectory) and bound it so a regression reintroducing
  // per-spawn allocation trips the test.
  sched::Scheduler s(2);
  core::M2Map<int, int> m(s, 2);
  for (int i = 0; i < 2048; ++i) m.insert(i, i);
  m.quiesce();

  util::Xoshiro256 rng(9);
  constexpr int kOps = 4096;
  // Warm one round so buffers/pools reach steady state.
  for (int i = 0; i < kOps / 4; ++i) {
    m.search(static_cast<int>(rng.bounded(2048)));
  }
  m.quiesce();

  const std::uint64_t before = alloc_count();
  for (int i = 0; i < kOps; ++i) {
    m.search(static_cast<int>(rng.bounded(2048)));
  }
  m.quiesce();
  const std::uint64_t per_op = (alloc_count() - before) / kOps;
  std::printf("[allocs] m2 steady-state search: ~%llu allocations/op\n",
              static_cast<unsigned long long>(per_op));
  // Measured ~45/op on the PR machine (61/op before the SBO-closure +
  // pooled-node + inline-group work); the count shifts with how ops get
  // bunched, so the bound leaves headroom while still catching a
  // reintroduced per-activation/per-continuation allocation.
  EXPECT_LE(per_op, 64u)
      << "per-op allocation budget regressed — check the spawn path and "
      << "continuation captures";
}

}  // namespace
}  // namespace pwss
