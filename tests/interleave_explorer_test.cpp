// Seeded interleaving explorer (DESIGN.md "Correctness-analysis toolbox").
//
// Each scenario below drives one of the delicate concurrent protocols —
// AsyncMap submission/quiescence, ParallelBuffer credit/debit, the
// DedicatedLock handoff, NodePool ownership/refill, Segment
// promote/demote — while PWSS_SCHED_POINT hooks inside the protocol's
// windows inject seed-determined yields and multi-millisecond parks. A
// sweep runs every scenario under several seeds; a failing seed is
// appended to the file named by $PWSS_EXPLORER_ARTIFACT (CI uploads it)
// together with the precise invariant-validator report, so the schedule
// can be replayed with PWSS_EXPLORER_SEEDS/PWSS_EXPLORER_SEED_BASE.
//
// In builds without -DPWSS_SCHEDULE_POINTS=ON the hooks compile to
// nothing and every scenario GTEST_SKIPs: a silent pass without any
// exploration would be worse than no test. The final suite
// member asserts that the instrumented windows actually executed, so a
// refactor that strands a hook on dead code fails loudly here.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "buffer/parallel_buffer.hpp"
#include "core/async_map.hpp"
#include "core/m1_map.hpp"
#include "core/ops.hpp"
#include "sched/scheduler.hpp"
#include "sync/dedicated_lock.hpp"
#include "util/fault.hpp"
#include "util/node_pool.hpp"
#include "util/rng.hpp"
#include "util/schedule_points.hpp"

namespace pwss {
namespace {

namespace schedpt = util::schedpt;

using IntMap = core::M1Map<std::uint64_t, std::uint64_t>;
using IntAsyncMap = core::AsyncMap<std::uint64_t, std::uint64_t, IntMap>;
using IntOp = core::Op<std::uint64_t, std::uint64_t>;

// A wrapped (mis-ordered) counter reads near 2^64, far above this.
constexpr std::size_t kWrapBound = std::size_t{1} << 40;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 0);
    if (end != env && v > 0) return static_cast<std::uint64_t>(v);
  }
  return fallback;
}

/// Seeds swept per scenario; the base seed shifts the whole sweep so a
/// failing seed can be replayed alone: PWSS_EXPLORER_SEEDS=1
/// PWSS_EXPLORER_SEED_BASE=<seed> ./interleave_explorer_test.
std::uint64_t sweep_count() { return env_u64("PWSS_EXPLORER_SEEDS", 6); }
std::uint64_t seed_base() {
  return env_u64("PWSS_EXPLORER_SEED_BASE", 0x5eedba5e0001ULL);
}

/// Appends a failing seed to the CI artifact file (no-op when the env var
/// is unset, e.g. in local runs).
void record_failing_seed(const char* scenario, std::uint64_t seed,
                         const std::string& what) {
  const char* path = std::getenv("PWSS_EXPLORER_ARTIFACT");
  if (path == nullptr) return;
  std::ofstream out(path, std::ios::app);
  out << scenario << " seed=0x" << std::hex << seed << std::dec << " : "
      << what << '\n';
}

/// Runs `scenario(seed)` (empty return = pass) for each seed of the sweep
/// with injection enabled, reporting every failing seed.
template <typename Fn>
void sweep(const char* name, Fn scenario) {
  const std::uint64_t n = sweep_count();
  const std::uint64_t base = seed_base();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t seed = base + i * 0x9e3779b9ULL;
    schedpt::enable(seed);
    std::string err = scenario(seed);
    schedpt::disable();
    if (!err.empty()) {
      record_failing_seed(name, seed, err);
      ADD_FAILURE() << name << " failed under seed 0x" << std::hex << seed
                    << std::dec << "\n  " << err
                    << "\n  replay: PWSS_EXPLORER_SEEDS=1 "
                    << "PWSS_EXPLORER_SEED_BASE=" << seed
                    << " ./interleave_explorer_test";
    }
  }
}

#define PWSS_REQUIRE_POINTS()                                              \
  do {                                                                     \
    if (!schedpt::kCompiled) {                                             \
      GTEST_SKIP()                                                         \
          << "schedule points compiled out; rebuild with "                 \
          << "-DPWSS_SCHEDULE_POINTS=ON to run the interleaving explorer"; \
    }                                                                      \
  } while (0)

// ---- scenario 1: AsyncMap submission/quiescence ------------------------------
//
// The PR-2 protocol: submit() must claim in_flight_ BEFORE publishing the
// op. The "async_map.submit.claim_publish" point sits exactly between the
// two; parking there is harmless with the fix and wraps the counter
// without it — reverting the fix makes this scenario fail within a few
// seeds (verified while building this suite; see DESIGN.md).
std::string async_map_scenario(std::uint64_t seed) {
  constexpr int kClients = 3;
  constexpr int kBursts = 3;
  constexpr std::size_t kPerBurst = 128;

  sched::Scheduler scheduler(2);
  IntAsyncMap amap(IntMap(&scheduler), scheduler);
  std::atomic<bool> stop{false};
  std::atomic<bool> wrapped{false};

  std::thread observer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (amap.in_flight() > kWrapBound) wrapped.store(true);
    }
  });
  std::thread quiescer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      amap.quiesce();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      util::Xoshiro256 rng(seed ^ (static_cast<std::uint64_t>(t) * 977 + 11));
      std::deque<core::OpTicket<std::uint64_t>> tickets;
      for (int burst = 0; burst < kBursts; ++burst) {
        tickets.clear();
        for (std::size_t i = 0; i < kPerBurst; ++i) {
          auto& ticket = tickets.emplace_back();
          const std::uint64_t key = rng.bounded(512);
          switch (rng.bounded(3)) {
            case 0: amap.submit(IntOp::insert(key, key * 3), &ticket); break;
            case 1: amap.submit(IntOp::erase(key), &ticket); break;
            default: amap.submit(IntOp::search(key), &ticket);
          }
          if (amap.in_flight() > kWrapBound) wrapped.store(true);
        }
        for (auto& ticket : tickets) ticket.wait();
      }
    });
  }
  for (auto& th : clients) th.join();
  stop.store(true, std::memory_order_release);
  observer.join();
  quiescer.join();
  amap.quiesce();

  if (wrapped.load()) return "in_flight() wrapped below zero";
  if (amap.in_flight() != 0) {
    std::ostringstream os;
    os << "in_flight() = " << amap.in_flight() << " after quiesce()";
    return os.str();
  }
  return amap.map().validate();
}

TEST(InterleaveExplorer, AsyncMapSubmitQuiesce) {
  PWSS_REQUIRE_POINTS();
  sweep("AsyncMapSubmitQuiesce", async_map_scenario);
}

// ---- scenario 2: ParallelBuffer credit conservation --------------------------
//
// submit() must credit pending_ before releasing the slot lock
// ("parallel_buffer.submit.credit" sits inside that window); flush() must
// debit only what it swapped out. The validator takes every slot lock and
// checks items == pending_ exactly, even mid-run.
std::string parallel_buffer_scenario(std::uint64_t seed) {
  constexpr unsigned kSubmitters = 4;
  constexpr std::size_t kPerThread = 1500;

  buffer::ParallelBuffer<std::uint64_t> buf(kSubmitters);
  std::atomic<bool> wrapped{false};
  std::atomic<bool> done{false};
  std::atomic<std::size_t> drained{0};
  std::string validator_error;
  std::mutex validator_mu;

  std::thread flusher([&] {
    std::uint64_t rounds = 0;
    while (!done.load(std::memory_order_acquire) || buf.pending() > 0) {
      drained.fetch_add(buf.flush().size(), std::memory_order_relaxed);
      if (buf.pending() > kWrapBound) wrapped.store(true);
      if (++rounds % 16 == 0) {
        std::string err = buf.validate();
        if (!err.empty()) {
          std::lock_guard<std::mutex> lk(validator_mu);
          if (validator_error.empty()) validator_error = std::move(err);
        }
      }
      std::this_thread::yield();
    }
    drained.fetch_add(buf.flush().size(), std::memory_order_relaxed);
  });

  std::vector<std::thread> submitters;
  for (unsigned t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        while (!buf.submit(static_cast<std::uint64_t>(t) * kPerThread + i)) {
        }
        if (buf.pending() > kWrapBound) wrapped.store(true);
      }
    });
  }
  for (auto& th : submitters) th.join();
  done.store(true, std::memory_order_release);
  flusher.join();
  (void)seed;

  if (wrapped.load()) return "pending() wrapped below zero";
  if (!validator_error.empty()) return validator_error;
  if (drained.load() != kSubmitters * kPerThread) {
    std::ostringstream os;
    os << "conservation broken: submitted " << kSubmitters * kPerThread
       << " items but drained " << drained.load();
    return os.str();
  }
  if (buf.pending() != 0) {
    std::ostringstream os;
    os << "pending() = " << buf.pending() << " after full drain";
    return os.str();
  }
  return buf.validate();
}

TEST(InterleaveExplorer, ParallelBufferConservation) {
  PWSS_REQUIRE_POINTS();
  sweep("ParallelBufferConservation", parallel_buffer_scenario);
}

// ---- scenario 3: DedicatedLock handoff ---------------------------------------
//
// "dedicated_lock.acquire.park" parks an acquirer between joining the
// count and parking its continuation; "dedicated_lock.release.scan" parks
// the releaser between giving up the count and scanning the key slots —
// the two windows whose overlap the Definition 37 protocol must survive
// without losing a parked continuation or running two critical sections.
std::string dedicated_lock_scenario(std::uint64_t seed) {
  constexpr std::size_t kKeys = 3;
  constexpr int kIters = 600;

  sync::DedicatedLock lock(kKeys);
  std::atomic<int> in_critical{0};
  std::atomic<bool> violation{false};
  std::atomic<int> completed{0};

  auto worker = [&](std::size_t key) {
    const auto sink = sync::DedicatedLock::ResumeSink::inline_runner();
    for (int i = 0; i < kIters; ++i) {
      std::atomic<bool> my_turn_done{false};
      lock.acquire(
          key,
          [&] {
            if (in_critical.fetch_add(1) != 0) violation = true;
            // Hold the lock across a yield: on a single-core box the
            // other workers never naturally overlap the critical
            // section, and without waiters piling up the contended
            // release path ("dedicated_lock.release.scan") and the
            // straggler park ("dedicated_lock.acquire.park") would go
            // unexercised entirely.
            std::this_thread::yield();
            in_critical.fetch_sub(1);
            completed.fetch_add(1);
            lock.release(sink);
            my_turn_done = true;
          },
          sink);
      while (!my_turn_done.load()) std::this_thread::yield();
    }
  };
  std::vector<std::thread> threads;
  for (std::size_t key = 0; key < kKeys; ++key) threads.emplace_back(worker, key);
  for (auto& th : threads) th.join();
  (void)seed;

  if (violation.load()) return "two continuations ran critical sections at once";
  if (completed.load() != static_cast<int>(kKeys) * kIters) {
    std::ostringstream os;
    os << "lost continuation: " << completed.load() << " of "
       << kKeys * kIters << " critical sections ran";
    return os.str();
  }
  if (lock.held()) return "lock still held after every holder released";
  return {};
}

TEST(InterleaveExplorer, DedicatedLockHandoff) {
  PWSS_REQUIRE_POINTS();
  sweep("DedicatedLockHandoff", dedicated_lock_scenario);
}

// ---- scenario 4: NodePool ownership and refill -------------------------------
//
// External (non-worker) threads all map to the pool's last shard, so the
// owner-claim CAS ("node_pool.owner.claim") and the locked alloc/free
// paths race continuously; cross-thread frees push traffic through the
// shard lists and overflow spine ("node_pool.refill.locked",
// "node_pool.spill_private"). The conservation validator runs after join.
std::string node_pool_scenario(std::uint64_t seed) {
  struct Node {
    std::uint64_t payload[2];
  };
  constexpr int kThreads = 3;
  constexpr int kRounds = 150;
  constexpr std::size_t kBatch = 48;

  sched::Scheduler scheduler(2);
  util::NodePool<Node> pool(&scheduler);
  std::mutex handoff_mu;
  std::vector<Node*> handoff;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(seed ^ static_cast<std::uint64_t>(t) * 7919);
      std::vector<Node*> mine;
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t i = 0; i < kBatch; ++i) {
          mine.push_back(pool.create(Node{{rng(), rng()}}));
        }
        // Half the batch is freed by whoever picks it up, so nodes cross
        // shards and the spill/refill paths stay busy.
        {
          std::lock_guard<std::mutex> lk(handoff_mu);
          for (std::size_t i = 0; i < kBatch / 2; ++i) {
            handoff.push_back(mine.back());
            mine.pop_back();
          }
          const std::size_t take = rng.bounded(handoff.size() + 1);
          for (std::size_t i = 0; i < take; ++i) {
            mine.push_back(handoff.back());
            handoff.pop_back();
          }
        }
        while (!mine.empty()) {
          pool.destroy(mine.back());
          mine.pop_back();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (Node* n : handoff) pool.destroy(n);
  handoff.clear();

  if (pool.live_nodes() != 0) {
    std::ostringstream os;
    os << "leak: " << pool.live_nodes() << " live nodes after freeing all";
    return os.str();
  }
  return pool.validate();
}

TEST(InterleaveExplorer, NodePoolOwnershipChurn) {
  PWSS_REQUIRE_POINTS();
  sweep("NodePoolOwnershipChurn", node_pool_scenario);
}

// ---- scenario 5: Segment promote/demote boundary -----------------------------
//
// Batches drive every segment of an M1 map back and forth across the
// flat<->tree representation boundary ("segment.promote" /
// "segment.demote" fire inside the rebuilds); the deep validator checks
// the representation flag, hysteresis, and pool accounting after every
// batch while the scheduler's workers execute the batch body in parallel.
std::string segment_boundary_scenario(std::uint64_t seed) {
  constexpr std::uint64_t kGrow = 96;   // past the flat capacity (64)
  constexpr std::uint64_t kShrink = 16; // below the demote bound (32)
  constexpr int kRounds = 4;

  sched::Scheduler scheduler(2);
  IntMap map(&scheduler);
  util::Xoshiro256 rng(seed);

  for (int round = 0; round < kRounds; ++round) {
    std::vector<IntOp> grow;
    for (std::uint64_t k = 0; k < kGrow; ++k) {
      grow.push_back(IntOp::insert(k, k + rng.bounded(1000)));
    }
    map.execute_batch(grow);
    std::string err = map.validate();
    if (!err.empty()) return "after grow batch: " + err;

    std::vector<IntOp> shrink;
    for (std::uint64_t k = kShrink; k < kGrow; ++k) {
      shrink.push_back(IntOp::erase(k));
    }
    map.execute_batch(shrink);
    err = map.validate();
    if (!err.empty()) return "after shrink batch: " + err;
    if (map.size() != kShrink) {
      std::ostringstream os;
      os << "size() = " << map.size() << " after shrinking to " << kShrink;
      return os.str();
    }
  }
  return {};
}

TEST(InterleaveExplorer, SegmentPromoteDemoteBoundary) {
  PWSS_REQUIRE_POINTS();
  sweep("SegmentPromoteDemoteBoundary", segment_boundary_scenario);
}

// ---- scenario 6: cancellation racing fulfillment -----------------------------
//
// cancel() sets a request flag any thread may write at any time; only the
// drive loop fulfills, reading the flag at the batch-cut boundary
// ("async_map.drive.fulfill_debit" parks inside that window). The
// single-fulfiller rule makes the terminal status exact: an op is either
// kCancelled and never touched the structure, or it executed normally —
// so on distinct insert keys, size() must equal the count of kInserted
// results no matter where the canceller lands.
std::string cancel_race_scenario(std::uint64_t seed) {
  constexpr std::size_t kOps = 256;

  sched::Scheduler scheduler(2);
  IntAsyncMap amap(IntMap(&scheduler), scheduler);
  (void)seed;  // the schedule points consume it; the script is fixed

  std::vector<core::OpTicket<std::uint64_t>> tickets(kOps);
  std::atomic<bool> go{false};
  std::thread canceller([&] {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    // Sweep cancel over the whole burst while the drive loop is cutting
    // batches: some requests land before the cut (op sheds kCancelled),
    // some after the fulfill (harmless no-op on a completed ticket).
    for (std::size_t i = 0; i < kOps; ++i) {
      if (i % 2 == 0) tickets[i].cancel();
    }
  });

  for (std::size_t i = 0; i < kOps; ++i) {
    amap.submit(IntOp::insert(1000 + i, i), &tickets[i]);
    if (i == kOps / 4) go.store(true, std::memory_order_release);
  }
  go.store(true, std::memory_order_release);  // tiny bursts: start anyway
  canceller.join();
  amap.quiesce();

  std::size_t inserted = 0;
  for (std::size_t i = 0; i < kOps; ++i) {
    if (!tickets[i].ready.load(std::memory_order_acquire)) {
      return "ticket not terminal after quiesce()";
    }
    const auto status = tickets[i].result.status;
    if (status == core::ResultStatus::kInserted) {
      ++inserted;
    } else if (status != core::ResultStatus::kCancelled) {
      std::ostringstream os;
      os << "unexpected terminal status " << static_cast<int>(status)
         << " for op " << i;
      return os.str();
    }
  }
  if (amap.in_flight() != 0) {
    std::ostringstream os;
    os << "in_flight() = " << amap.in_flight() << " after quiesce()";
    return os.str();
  }
  if (amap.map().size() != inserted) {
    std::ostringstream os;
    os << "terminal-status exactness broken: " << inserted
       << " ops reported kInserted but size() = " << amap.map().size();
    return os.str();
  }
  return amap.map().validate();
}

TEST(InterleaveExplorer, CancelRacesFulfill) {
  PWSS_REQUIRE_POINTS();
  sweep("CancelRacesFulfill", cancel_race_scenario);
}

// ---- scenario 7: injected pool exhaustion mid-batch --------------------------
//
// The "async_map.batch.pool_reserve" fault site sheds a whole cut batch
// with kOverloaded before the batch touches the structure. Forcing it to
// fire while a burst is in flight must leave every op terminal (inserted
// or shed — nothing torn), the quiescence counter at zero, and the
// distinct-key conservation size() == #kInserted intact.
std::string pool_exhaustion_scenario(std::uint64_t seed) {
  constexpr std::size_t kOps = 256;

  sched::Scheduler scheduler(2);
  IntAsyncMap amap(IntMap(&scheduler), scheduler);
  util::Xoshiro256 rng(seed ^ 0xfa17ULL);

  // A handful of forced batch-shed events land at seed-dependent moments
  // of the burst (the schedule points shift which ops each cut contains).
  util::faultpt::force("async_map.batch.pool_reserve",
                       1 + static_cast<std::int64_t>(rng.bounded(3)));

  std::vector<core::OpTicket<std::uint64_t>> tickets(kOps);
  for (std::size_t i = 0; i < kOps; ++i) {
    amap.submit(IntOp::insert(5000 + i, i), &tickets[i]);
  }
  amap.quiesce();
  util::faultpt::clear_forced();

  std::size_t inserted = 0;
  std::size_t shed = 0;
  for (std::size_t i = 0; i < kOps; ++i) {
    if (!tickets[i].ready.load(std::memory_order_acquire)) {
      return "ticket not terminal after quiesce()";
    }
    const auto status = tickets[i].result.status;
    if (status == core::ResultStatus::kInserted) {
      ++inserted;
    } else if (status == core::ResultStatus::kOverloaded) {
      ++shed;
    } else {
      std::ostringstream os;
      os << "unexpected terminal status " << static_cast<int>(status)
         << " for op " << i;
      return os.str();
    }
  }
  if (inserted + shed != kOps) return "ops neither inserted nor shed";
  if (amap.in_flight() != 0) {
    std::ostringstream os;
    os << "in_flight() = " << amap.in_flight() << " after quiesce()";
    return os.str();
  }
  if (amap.map().size() != inserted) {
    std::ostringstream os;
    os << "shed batch touched the structure: size() = " << amap.map().size()
       << " but only " << inserted << " ops reported kInserted";
    return os.str();
  }
  return amap.map().validate();
}

TEST(InterleaveExplorer, InjectedPoolExhaustionMidBatch) {
  PWSS_REQUIRE_POINTS();
  if (!util::faultpt::kCompiled) {
    GTEST_SKIP() << "fault points compiled out; rebuild with "
                 << "-DPWSS_FAULT_INJECT=ON to run the injection scenario";
  }
  sweep("InjectedPoolExhaustionMidBatch", pool_exhaustion_scenario);
}

// ---- coverage: the instrumented windows actually executed --------------------
//
// Runs last (declaration order). A hook stranded on dead code by a
// refactor would silently stop exploring its window; this catches it.
TEST(InterleaveExplorer, ZInstrumentedPointsWereExercised) {
  PWSS_REQUIRE_POINTS();
  for (const char* name : {
           "async_map.submit.claim_publish",
           "async_map.drive.fulfill_debit",
           "parallel_buffer.submit.credit",
           "parallel_buffer.flush.debit",
           "dedicated_lock.release.scan",
           "node_pool.owner.claim",
           "segment.promote",
           "segment.demote",
       }) {
    EXPECT_GT(schedpt::hits(name), 0u)
        << "schedule point \"" << name
        << "\" never executed: its window is no longer exercised";
  }
}

}  // namespace
}  // namespace pwss
