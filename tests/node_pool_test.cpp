// Tests for util/node_pool.hpp and the pooled JTree configuration: pool
// accounting (allocated == freed at destruction, reuse instead of fresh
// chunks, no double-recycle), differential fuzz vs std::map under mixed
// batch ops with recycling on, cross-tree recycling within one pool
// domain, and a parallel multi-insert/extract stress that the CI TSan job
// runs to prove the per-worker shards are race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <optional>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/segment.hpp"
#include "sched/scheduler.hpp"
#include "tree/jtree.hpp"
#include "util/node_pool.hpp"
#include "util/rng.hpp"

namespace pwss {
namespace {

using IntTree = tree::JTree<int, int>;
using IntPool = IntTree::Pool;

TEST(NodePool, AllocatedEqualsFreedAtDestruction) {
  IntPool pool;
  {
    IntTree t(&pool);
    for (int i = 0; i < 1000; ++i) t.insert(i, i);
    EXPECT_EQ(pool.live_nodes(), 1000u);
    for (int i = 0; i < 500; ++i) t.erase(i);
    EXPECT_EQ(pool.live_nodes(), 500u);
  }
  // Tree destroyed: every node back in the pool.
  const auto st = pool.stats();
  EXPECT_EQ(st.node_allocs, st.node_frees);
  EXPECT_EQ(pool.live_nodes(), 0u);
  EXPECT_GE(st.free_nodes, 1000u);  // parked, not returned to the heap
  EXPECT_GT(st.chunk_allocs, 0u);
  // ~NodePool() asserts allocs == frees in debug builds.
}

TEST(NodePool, WarmPoolReusesInsteadOfGrowingChunks) {
  IntPool pool;
  IntTree t(&pool);
  for (int i = 0; i < 2000; ++i) t.insert(i, i);
  for (int i = 0; i < 2000; ++i) t.erase(i);
  const auto warm = pool.stats();
  // Same shape again: every node must come off the free lists.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 2000; ++i) t.insert(i, i);
    for (int i = 0; i < 2000; ++i) t.erase(i);
  }
  EXPECT_EQ(pool.stats().chunk_allocs, warm.chunk_allocs)
      << "warm insert/erase churn must not allocate new chunks";
}

TEST(NodePool, NoDoubleRecycleOnReuse) {
  // Storage handed out twice without an intervening free would surface as
  // duplicate pointers within one allocation burst.
  util::NodePool<std::pair<int, int>> pool;
  std::vector<std::pair<int, int>*> nodes;
  constexpr int kN = 500;
  for (int i = 0; i < kN; ++i) nodes.push_back(pool.create(i, i));
  std::unordered_set<void*> first(nodes.begin(), nodes.end());
  ASSERT_EQ(first.size(), nodes.size());
  for (auto* p : nodes) pool.destroy(p);
  nodes.clear();
  const auto warm_chunks = pool.stats().chunk_allocs;
  std::unordered_set<void*> second;
  for (int i = 0; i < kN; ++i) {
    auto* p = pool.create(i, i);
    EXPECT_TRUE(second.insert(p).second) << "storage handed out twice";
    nodes.push_back(p);
  }
  // Everything was served from recycled storage or slack slots of the
  // already-allocated chunks (never-handed-out tails), never fresh heap.
  EXPECT_EQ(pool.stats().chunk_allocs, warm_chunks);
  for (auto* p : nodes) pool.destroy(p);
}

TEST(NodePool, BulkChainRecycleAccountsEveryNode) {
  IntPool pool;
  {
    IntTree t(&pool);
    for (int i = 0; i < 5000; ++i) t.insert(i, i);
    t.clear();  // iterative teardown, one spliced chain
    EXPECT_EQ(pool.live_nodes(), 0u);
    const auto st = pool.stats();
    EXPECT_EQ(st.node_frees, 5000u);
    // Rebuild draws from the chain, no new chunks.
    for (int i = 0; i < 5000; ++i) t.insert(i, i);
    EXPECT_EQ(pool.stats().chunk_allocs, st.chunk_allocs);
  }
}

TEST(NodePool, CrossTreeRecyclingWithinOneDomain) {
  // Two trees sharing one pool domain: extracting from one and inserting
  // into the other (the segment→segment transfer shape) must be satisfied
  // from recycled nodes.
  IntPool pool;
  IntTree a(&pool), b(&pool);
  std::vector<std::pair<int, int>> items;
  for (int i = 0; i < 4096; ++i) items.emplace_back(i, i);
  a.multi_insert(items);
  const auto warm = pool.stats();
  std::vector<int> keys;
  for (int i = 0; i < 4096; ++i) keys.push_back(i);
  std::vector<std::optional<int>> out;
  for (int round = 0; round < 4; ++round) {
    IntTree& src = round % 2 == 0 ? a : b;
    IntTree& dst = round % 2 == 0 ? b : a;
    src.multi_extract(keys, out);
    dst.multi_insert(items);
    ASSERT_EQ(dst.size(), 4096u);
    ASSERT_TRUE(dst.check_invariants());
  }
  EXPECT_EQ(pool.stats().chunk_allocs, warm.chunk_allocs)
      << "transfers within one pool domain must not grow the pool";
  EXPECT_EQ(pool.live_nodes(), 4096u);
}

// Differential fuzz vs std::map: mixed point ops, multi_insert,
// multi_extract, and split/join exercised through extract_prefix/suffix
// (which are split_at + join compositions), all with recycling on.
TEST(NodePool, DifferentialFuzzWithRecycling) {
  util::Xoshiro256 rng(2024);
  IntPool pool;
  IntTree t(&pool);
  std::map<int, int> ref;
  for (int round = 0; round < 400; ++round) {
    switch (rng.bounded(6)) {
      case 0: {  // point inserts
        for (int i = 0; i < 16; ++i) {
          const int k = static_cast<int>(rng.bounded(800));
          const int v = static_cast<int>(rng.bounded(10000));
          t.insert(k, v);
          ref[k] = v;
        }
        break;
      }
      case 1: {  // point erases
        for (int i = 0; i < 16; ++i) {
          const int k = static_cast<int>(rng.bounded(800));
          auto removed = t.erase(k);
          auto it = ref.find(k);
          ASSERT_EQ(removed.has_value(), it != ref.end());
          if (it != ref.end()) {
            ASSERT_EQ(*removed, it->second);
            ref.erase(it);
          }
        }
        break;
      }
      case 2: {  // multi_insert
        std::set<int> key_set;
        const std::size_t b = 1 + rng.bounded(128);
        while (key_set.size() < b) {
          key_set.insert(static_cast<int>(rng.bounded(800)));
        }
        std::vector<std::pair<int, int>> items;
        for (int k : key_set) items.emplace_back(k, round);
        t.multi_insert(items);
        for (int k : key_set) ref[k] = round;
        break;
      }
      case 3: {  // multi_extract
        std::set<int> key_set;
        const std::size_t b = 1 + rng.bounded(128);
        while (key_set.size() < b) {
          key_set.insert(static_cast<int>(rng.bounded(800)));
        }
        std::vector<int> keys(key_set.begin(), key_set.end());
        std::vector<std::optional<int>> out;
        t.multi_extract(keys, out);
        for (std::size_t i = 0; i < keys.size(); ++i) {
          auto it = ref.find(keys[i]);
          ASSERT_EQ(out[i].has_value(), it != ref.end());
          if (it != ref.end()) {
            ASSERT_EQ(*out[i], it->second);
            ref.erase(it);
          }
        }
        break;
      }
      case 4: {  // split_at + join2: drop a prefix
        const std::size_t n = rng.bounded(1 + t.size() / 4);
        auto removed = t.extract_prefix(n);
        for (auto& [k, v] : removed) {
          auto it = ref.find(k);
          ASSERT_NE(it, ref.end());
          ASSERT_EQ(v, it->second);
          ref.erase(it);
        }
        break;
      }
      default: {  // split_at + join2: drop a suffix
        const std::size_t n = rng.bounded(1 + t.size() / 4);
        auto removed = t.extract_suffix(n);
        for (auto& [k, v] : removed) {
          auto it = ref.find(k);
          ASSERT_NE(it, ref.end());
          ASSERT_EQ(v, it->second);
          ref.erase(it);
        }
        break;
      }
    }
    // Ordered queries vs the std::map oracle every round: the v2 kinds
    // read the same recycled nodes the mutations above churn through.
    for (int probe = 0; probe < 8; ++probe) {
      const int q = static_cast<int>(rng.bounded(820));
      auto [pk, pv] = t.predecessor(q);
      auto lb = ref.lower_bound(q);
      if (lb == ref.begin()) {
        ASSERT_EQ(pk, nullptr) << "predecessor(" << q << ")";
      } else {
        auto want = std::prev(lb);
        ASSERT_NE(pk, nullptr) << "predecessor(" << q << ")";
        ASSERT_EQ(*pk, want->first);
        ASSERT_EQ(*pv, want->second);
      }
      auto [sk, sv] = t.successor(q);
      auto ub = ref.upper_bound(q);
      if (ub == ref.end()) {
        ASSERT_EQ(sk, nullptr) << "successor(" << q << ")";
      } else {
        ASSERT_NE(sk, nullptr) << "successor(" << q << ")";
        ASSERT_EQ(*sk, ub->first);
        ASSERT_EQ(*sv, ub->second);
      }
      const int hi = q + static_cast<int>(rng.bounded(400));
      ASSERT_EQ(t.range_count(q, hi),
                static_cast<std::size_t>(std::distance(
                    ref.lower_bound(q), ref.upper_bound(hi))))
          << "range_count(" << q << ", " << hi << ")";
    }
    ASSERT_EQ(t.size(), ref.size());
    ASSERT_EQ(pool.live_nodes(), ref.size())
        << "pool accounting must track the tree size exactly";
    ASSERT_EQ(t.validate(), "") << "round " << round;
    // Deep pool-conservation walk (free-list lengths vs counters, chunk
    // accounting) every few rounds — it touches every free node, so don't
    // pay it per round.
    if (round % 40 == 39) {
      ASSERT_EQ(pool.validate(), "") << "round " << round;
    }
  }
  const auto v = t.to_vector();
  std::vector<std::pair<int, int>> rv(ref.begin(), ref.end());
  EXPECT_EQ(v, rv);
}

// Parallel batch ops over a pooled tree: the fork/join halves allocate and
// free on per-worker shards concurrently. Run under TSan in CI.
TEST(NodePool, ParallelMultiInsertExtractStress) {
  sched::Scheduler scheduler(4);
  IntPool pool(&scheduler);
  IntTree t(&pool);
  const tree::ParCtx ctx{&scheduler, 16};  // small grain: force deep forking

  util::Xoshiro256 rng(7);
  std::map<int, int> ref;
  for (int round = 0; round < 30; ++round) {
    std::set<int> key_set;
    const std::size_t b = 512 + rng.bounded(2048);
    while (key_set.size() < b) {
      key_set.insert(static_cast<int>(rng.bounded(1 << 18)));
    }
    std::vector<std::pair<int, int>> items;
    for (int k : key_set) items.emplace_back(k, round);
    // run_sync hosts the batch on a pool worker so parallel_invoke truly
    // forks (off-pool it degrades to sequential) and the recursion halves
    // allocate/free on different worker shards.
    scheduler.run_sync([&] { t.multi_insert(items, ctx); });
    for (int k : key_set) ref[k] = round;

    // Extract a random half of what we just inserted plus some misses.
    std::vector<int> keys;
    for (std::size_t i = 0; i < items.size(); i += 2) {
      keys.push_back(items[i].first);
    }
    std::vector<std::optional<int>> out;
    scheduler.run_sync([&] { t.multi_extract(keys, out, ctx); });
    for (std::size_t i = 0; i < keys.size(); ++i) {
      auto it = ref.find(keys[i]);
      ASSERT_EQ(out[i].has_value(), it != ref.end());
      if (it != ref.end()) ref.erase(it);
    }
    ASSERT_EQ(t.size(), ref.size());
    ASSERT_EQ(pool.live_nodes(), ref.size());
    if (round % 10 == 9) {
      ASSERT_EQ(pool.validate(), "") << "round " << round;
    }
  }
  ASSERT_EQ(t.validate(), "");
  ASSERT_EQ(pool.validate(), "");
  const auto v = t.to_vector();
  std::vector<std::pair<int, int>> rv(ref.begin(), ref.end());
  EXPECT_EQ(v, rv);
}

// Segment-level pool domain: transfers between two segments of one domain
// stay chunk-neutral once warm (the extract side feeds the insert side).
TEST(NodePool, SegmentTransfersAreChunkNeutralWhenWarm) {
  core::SegmentPools<int, int> pools;
  core::Segment<int, int> a(&pools), b(&pools);
  using Item = core::Segment<int, int>::Item;
  std::vector<Item> items;
  for (int i = 0; i < 2048; ++i) items.push_back(Item{i, i, 0});
  a.insert_front_batch(items);
  // One full round trip warms the pool high-water mark.
  std::vector<Item> moved;
  a.extract_least_recent(2048, moved);
  b.insert_front_batch(std::span<Item>(moved));
  const auto warm_key = pools.key_pool.stats().chunk_allocs;
  const auto warm_rec = pools.rec_pool.stats().chunk_allocs;
  for (int round = 0; round < 6; ++round) {
    core::Segment<int, int>& src = round % 2 == 0 ? b : a;
    core::Segment<int, int>& dst = round % 2 == 0 ? a : b;
    src.extract_least_recent(2048, moved);
    dst.insert_front_batch(std::span<Item>(moved));
    ASSERT_EQ(dst.size(), 2048u);
  }
  EXPECT_EQ(pools.key_pool.stats().chunk_allocs, warm_key);
  EXPECT_EQ(pools.rec_pool.stats().chunk_allocs, warm_rec);
}

// Without a scheduler every thread maps to shard 0, so this pins the
// claim protocol's sharing case: the first thread to touch the shard owns
// its private list (lock-free fast path) while every other thread funnels
// through the same shard's locked shared list — concurrently. Accounting
// must balance across both paths, and TSan must see no race between the
// owner's plain priv_head accesses and the foreigners' locked traffic
// (they only meet under the shard lock inside refill_private/spill).
TEST(NodePool, ForeignThreadsShareShardWithOwnerFastPath) {
  util::NodePool<std::pair<int, int>> pool;
  // Claim shard 0 for this thread before any contender exists.
  { auto* p = pool.create(0, 0); pool.destroy(p); }
  constexpr int kForeign = 4;
  constexpr int kOps = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kForeign);
  for (int t = 0; t < kForeign; ++t) {
    threads.emplace_back([&pool, &go, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::vector<std::pair<int, int>*> held;
      held.reserve(64);
      util::Xoshiro256 rng(100 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOps; ++i) {
        if (held.size() < 64 && (held.empty() || (rng() & 1) != 0)) {
          held.push_back(pool.create(t, i));
        } else {
          pool.destroy(held.back());
          held.pop_back();
        }
      }
      for (auto* p : held) pool.destroy(p);
    });
  }
  go.store(true, std::memory_order_release);
  // Owner churns the private fast path concurrently with the foreigners.
  std::vector<std::pair<int, int>*> held;
  held.reserve(64);
  util::Xoshiro256 rng(7);
  for (int i = 0; i < kOps; ++i) {
    if (held.size() < 64 && (held.empty() || (rng() & 1) != 0)) {
      held.push_back(pool.create(-1, i));
    } else {
      pool.destroy(held.back());
      held.pop_back();
    }
  }
  for (auto* p : held) pool.destroy(p);
  for (auto& th : threads) th.join();
  const auto st = pool.stats();
  EXPECT_EQ(st.node_allocs, st.node_frees)
      << "owner-private and locked-shared accounting must agree";
  EXPECT_EQ(pool.live_nodes(), 0u);
  EXPECT_GE(st.node_allocs, static_cast<std::uint64_t>(kOps));
}

}  // namespace
}  // namespace pwss
