// Cross-module integration tests: the full stack (scheduler + buffer +
// sort + segments + maps) exercised together, plus differential runs of
// all three maps against each other on identical workloads.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "core/async_map.hpp"
#include "core/m0_map.hpp"
#include "core/m1_map.hpp"
#include "core/m2_map.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace pwss {
namespace {

using core::Op;
using core::OpType;
using core::Result;
using IntOp = Op<std::uint64_t, std::uint64_t>;

std::vector<IntOp> random_batch(util::Xoshiro256& rng, std::size_t size,
                                std::uint64_t universe, std::uint64_t round) {
  std::vector<IntOp> batch;
  batch.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    const std::uint64_t key = rng.bounded(universe);
    switch (rng.bounded(4)) {
      case 0:
      case 1: batch.push_back(IntOp::insert(key, round * 100000 + i)); break;
      case 2: batch.push_back(IntOp::erase(key)); break;
      default: batch.push_back(IntOp::search(key));
    }
  }
  return batch;
}

void expect_same(const std::vector<Result<std::uint64_t>>& a,
                 const std::vector<Result<std::uint64_t>>& b, int round,
                 const char* who) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].success, b[i].success) << who << " round " << round << " op " << i;
    ASSERT_EQ(a[i].value, b[i].value) << who << " round " << round << " op " << i;
  }
}

// M0, M1 and M2 agree batch-for-batch on identical inputs.
TEST(Integration, ThreeMapsAgreeOnBatches) {
  sched::Scheduler scheduler(4);
  core::M0Map<std::uint64_t, std::uint64_t> m0;
  core::M1Map<std::uint64_t, std::uint64_t> m1(&scheduler);
  core::M2Map<std::uint64_t, std::uint64_t> m2(scheduler);

  util::Xoshiro256 rng(2024);
  for (int round = 0; round < 30; ++round) {
    const auto batch = random_batch(rng, 1 + rng.bounded(256), 300,
                                    static_cast<std::uint64_t>(round));
    const auto r0 = m0.execute_batch(batch);
    const auto r1 = m1.execute_batch(batch);
    const auto r2 = m2.execute_batch(batch);
    expect_same(r0, r1, round, "m0-vs-m1");
    expect_same(r0, r2, round, "m0-vs-m2");
    m2.quiesce();
    ASSERT_EQ(m0.size(), m1.size()) << round;
    ASSERT_EQ(m0.size(), m2.size()) << round;
  }
  EXPECT_TRUE(m0.check_invariants());
  EXPECT_TRUE(m1.check_invariants());
  EXPECT_TRUE(m2.check_invariants());
}

// Zipf-heavy workload with all op kinds: invariants hold throughout.
TEST(Integration, ZipfWorkloadSoundness) {
  sched::Scheduler scheduler(4);
  core::M1Map<std::uint64_t, std::uint64_t> m1(&scheduler);
  const auto keys = util::zipf_keys(1 << 12, 1.1, 30000, 3);
  const auto ops = util::apply_mix(keys, {.search = 0.6, .insert = 0.3, .erase = 0.1}, 4);

  std::vector<IntOp> batch;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    switch (ops[i].kind) {
      case util::OpKind::kSearch: batch.push_back(IntOp::search(ops[i].key)); break;
      case util::OpKind::kInsert: batch.push_back(IntOp::insert(ops[i].key, ops[i].value)); break;
      case util::OpKind::kErase: batch.push_back(IntOp::erase(ops[i].key)); break;
    }
    if (batch.size() == 2048 || i + 1 == ops.size()) {
      m1.execute_batch(batch);
      batch.clear();
      ASSERT_TRUE(m1.check_invariants());
    }
  }
}

// Hot items end up shallower than cold items in every map.
TEST(Integration, WorkingSetPropertyAcrossMaps) {
  sched::Scheduler scheduler(4);
  core::M0Map<std::uint64_t, int> m0;
  core::M1Map<std::uint64_t, int> m1(&scheduler);

  std::vector<Op<std::uint64_t, int>> warm;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    m0.insert(i, 1);
    warm.push_back(Op<std::uint64_t, int>::insert(i, 1));
  }
  m1.execute_batch(warm);

  // Drive a hot set (late-inserted, hence initially deep) through both.
  for (int round = 0; round < 10; ++round) {
    std::vector<Op<std::uint64_t, int>> hot;
    for (std::uint64_t k = 4990; k < 4998; ++k) {
      m0.search(k);
      hot.push_back(Op<std::uint64_t, int>::search(k));
    }
    m1.execute_batch(hot);
  }
  for (std::uint64_t k = 4990; k < 4998; ++k) {
    EXPECT_LE(*m0.segment_of(k), 2u) << "m0 key " << k;
    EXPECT_LE(*m1.segment_of(k), 2u) << "m1 key " << k;
  }
  // An untouched late-inserted key sits deeper than every hot key.
  EXPECT_GT(*m0.segment_of(4000), 2u);
  EXPECT_GT(*m1.segment_of(4000), 2u);
}

// Concurrent clients on AsyncMap<M1> and M2 with per-thread key spaces:
// both maps end up with identical contents.
TEST(Integration, AsyncM1AndM2ConvergeUnderConcurrency) {
  sched::Scheduler scheduler(4);
  core::AsyncMap<std::uint64_t, std::uint64_t,
                 core::M1Map<std::uint64_t, std::uint64_t>>
      am1(core::M1Map<std::uint64_t, std::uint64_t>(&scheduler), scheduler);
  core::M2Map<std::uint64_t, std::uint64_t> m2(scheduler);

  constexpr int kThreads = 4, kOpsPer = 800;
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 131 + 7);
      for (int i = 0; i < kOpsPer; ++i) {
        // Per-thread key space so both maps see the same per-key op order.
        const std::uint64_t key =
            static_cast<std::uint64_t>(t) * 1000000 + rng.bounded(200);
        switch (rng.bounded(3)) {
          case 0: {
            const std::uint64_t val = rng.bounded(1 << 20);
            am1.insert(key, val);
            m2.insert(key, val);
            break;
          }
          case 1:
            am1.erase(key);
            m2.erase(key);
            break;
          default: {
            am1.search(key);
            m2.search(key);
          }
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  am1.quiesce();
  m2.quiesce();
  ASSERT_EQ(am1.map().size(), m2.size());
  // Contents identical: every key in m1 is in m2 with the same value.
  bool same = true;
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint64_t k = 0; k < 200; ++k) {
      const std::uint64_t key = static_cast<std::uint64_t>(t) * 1000000 + k;
      auto v1 = am1.map().search(key);
      auto v2 = m2.search(key);
      if (v1 != v2) same = false;
    }
  }
  m2.quiesce();
  EXPECT_TRUE(same);
  EXPECT_TRUE(am1.map().check_invariants());
  EXPECT_TRUE(m2.check_invariants());
}

// Sustained growth and shrink cycles across segment-count transitions.
TEST(Integration, GrowShrinkCycles) {
  sched::Scheduler scheduler(2);
  core::M1Map<std::uint64_t, std::uint64_t> m1(&scheduler);
  core::M2Map<std::uint64_t, std::uint64_t> m2(scheduler, 2);
  for (int cycle = 0; cycle < 4; ++cycle) {
    std::vector<IntOp> ins, del;
    const std::uint64_t n = 1000 + static_cast<std::uint64_t>(cycle) * 700;
    for (std::uint64_t i = 0; i < n; ++i) {
      ins.push_back(IntOp::insert(i, i + static_cast<std::uint64_t>(cycle)));
      if (i % 2 == 0) del.push_back(IntOp::erase(i));
    }
    m1.execute_batch(ins);
    m2.execute_batch(ins);
    m1.execute_batch(del);
    m2.execute_batch(del);
    m2.quiesce();
    ASSERT_EQ(m1.size(), m2.size()) << "cycle " << cycle;
    ASSERT_TRUE(m1.check_invariants()) << "cycle " << cycle;
    ASSERT_TRUE(m2.check_invariants()) << "cycle " << cycle;
  }
}

}  // namespace
}  // namespace pwss
