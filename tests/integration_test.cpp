// Cross-module integration tests: the full stack (scheduler + buffer +
// sort + segments + maps + driver) exercised together. The cross-backend
// suites are parameterized over BackendRegistry names — every backend is
// run differentially against the M0 reference (the paper's model
// structure) or a deterministic replay.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/m0_map.hpp"
#include "core/m1_map.hpp"
#include "driver/registry.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace pwss {
namespace {

using core::Op;
using core::OpType;
using core::Result;
using IntOp = Op<std::uint64_t, std::uint64_t>;

std::vector<IntOp> random_batch(util::Xoshiro256& rng, std::size_t size,
                                std::uint64_t universe, std::uint64_t round) {
  std::vector<IntOp> batch;
  batch.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    const std::uint64_t key = rng.bounded(universe);
    switch (rng.bounded(4)) {
      case 0:
      case 1: batch.push_back(IntOp::insert(key, round * 100000 + i)); break;
      case 2: batch.push_back(IntOp::erase(key)); break;
      default: batch.push_back(IntOp::search(key));
    }
  }
  return batch;
}

driver::Options two_workers() {
  driver::Options o;
  o.workers = 2;
  return o;
}

class BackendIntegrationTest
    : public ::testing::TestWithParam<std::string> {};

// Every backend agrees batch-for-batch with the M0 reference.
TEST_P(BackendIntegrationTest, AgreesWithM0ReferenceOnBatches) {
  auto map = driver::make_driver<std::uint64_t, std::uint64_t>(GetParam(),
                                                               two_workers());
  core::M0Map<std::uint64_t, std::uint64_t> ref;

  util::Xoshiro256 rng(2024);
  for (int round = 0; round < 30; ++round) {
    const auto batch = random_batch(rng, 1 + rng.bounded(256), 300,
                                    static_cast<std::uint64_t>(round));
    const auto want = ref.execute_batch(batch);
    const auto got = map->run(batch);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].success(), want[i].success())
          << GetParam() << " round " << round << " op " << i;
      ASSERT_EQ(got[i].value, want[i].value)
          << GetParam() << " round " << round << " op " << i;
    }
    ASSERT_EQ(map->size(), ref.size()) << GetParam() << " round " << round;
    // Deep validator sweep (representation flags, hysteresis, pool
    // accounting) every few rounds, with the failure description when a
    // backend provides one.
    if (round % 10 == 9) {
      ASSERT_EQ(map->validate(), "") << GetParam() << " round " << round;
      ASSERT_EQ(ref.validate(), "") << "reference, round " << round;
    }
  }
  EXPECT_EQ(map->validate(), "") << GetParam();
  EXPECT_EQ(ref.validate(), "");
}

// Concurrent clients with per-thread key spaces: the backend converges to
// exactly the state a sequential replay of each thread's ops predicts.
TEST_P(BackendIntegrationTest, ConcurrentClientsConvergeToReplayState) {
  auto map = driver::make_driver<std::uint64_t, std::uint64_t>(GetParam(),
                                                               two_workers());
  constexpr int kThreads = 4, kOpsPer = 800;

  auto thread_ops = [](int t) {
    util::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 131 + 7);
    std::vector<IntOp> ops;
    ops.reserve(kOpsPer);
    for (int i = 0; i < kOpsPer; ++i) {
      const std::uint64_t key =
          static_cast<std::uint64_t>(t) * 1000000 + rng.bounded(200);
      switch (rng.bounded(3)) {
        case 0: ops.push_back(IntOp::insert(key, rng.bounded(1 << 20))); break;
        case 1: ops.push_back(IntOp::erase(key)); break;
        default: ops.push_back(IntOp::search(key));
      }
    }
    return ops;
  };

  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (const auto& op : thread_ops(t)) {
        switch (op.type) {
          case OpType::kInsert: map->insert(op.key, op.value); break;
          case OpType::kErase: map->erase(op.key); break;
          case OpType::kSearch: map->search(op.key); break;
          default: break;  // this script is point-only
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  map->quiesce();

  // Replay: per-thread key spaces are disjoint, so the final state is the
  // union of each thread's sequential outcome.
  std::map<std::uint64_t, std::uint64_t> expected;
  for (int t = 0; t < kThreads; ++t) {
    for (const auto& op : thread_ops(t)) {
      if (op.type == OpType::kInsert) {
        expected[op.key] = op.value;
      } else if (op.type == OpType::kErase) {
        expected.erase(op.key);
      }
    }
  }
  ASSERT_EQ(map->size(), expected.size()) << GetParam();
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint64_t k = 0; k < 200; ++k) {
      const std::uint64_t key = static_cast<std::uint64_t>(t) * 1000000 + k;
      const auto it = expected.find(key);
      const auto got = map->search(key);
      ASSERT_EQ(got.has_value(), it != expected.end())
          << GetParam() << " key " << key;
      if (it != expected.end()) {
        ASSERT_EQ(*got, it->second) << GetParam() << " key " << key;
      }
    }
  }
  EXPECT_TRUE(map->check());
}

// Sustained growth and shrink cycles across segment-count transitions.
TEST_P(BackendIntegrationTest, GrowShrinkCycles) {
  auto map = driver::make_driver<std::uint64_t, std::uint64_t>(GetParam(),
                                                               two_workers());
  core::M0Map<std::uint64_t, std::uint64_t> ref;
  for (int cycle = 0; cycle < 4; ++cycle) {
    std::vector<IntOp> ins, del;
    const std::uint64_t n = 1000 + static_cast<std::uint64_t>(cycle) * 700;
    for (std::uint64_t i = 0; i < n; ++i) {
      ins.push_back(IntOp::insert(i, i + static_cast<std::uint64_t>(cycle)));
      if (i % 2 == 0) del.push_back(IntOp::erase(i));
    }
    map->run(ins);
    ref.execute_batch(ins);
    map->run(del);
    ref.execute_batch(del);
    ASSERT_EQ(map->size(), ref.size()) << GetParam() << " cycle " << cycle;
    ASSERT_TRUE(map->check()) << GetParam() << " cycle " << cycle;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendIntegrationTest,
                         ::testing::Values("m0", "m1", "m2", "iacono",
                                           "splay", "avl", "locked",
                                           "sharded:m1", "sharded:locked"),
                         [](const auto& info) {
                           return testutil::gtest_safe(info.param);
                         });

// Zipf-heavy workload with all op kinds: M1 invariants hold throughout
// (structure-specific; uses the concrete type).
TEST(Integration, ZipfWorkloadSoundness) {
  sched::Scheduler scheduler(4);
  core::M1Map<std::uint64_t, std::uint64_t> m1(&scheduler);
  const auto keys = util::zipf_keys(1 << 12, 1.1, 30000, 3);
  const auto ops = util::apply_mix(keys, {.search = 0.6, .insert = 0.3, .erase = 0.1}, 4);

  std::vector<IntOp> batch;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    switch (ops[i].kind) {
      case util::OpKind::kSearch: batch.push_back(IntOp::search(ops[i].key)); break;
      case util::OpKind::kInsert: batch.push_back(IntOp::insert(ops[i].key, ops[i].value)); break;
      case util::OpKind::kErase: batch.push_back(IntOp::erase(ops[i].key)); break;
      default: break;  // point mix only
    }
    if (batch.size() == 2048 || i + 1 == ops.size()) {
      m1.execute_batch(batch);
      batch.clear();
      ASSERT_EQ(m1.validate(), "");
    }
  }
}

// Hot items end up shallower than cold items in every working-set backend,
// observed through the uniform depth_of() API.
TEST(Integration, WorkingSetPropertyAcrossBackends) {
  for (const char* name : {"m0", "m1", "iacono"}) {
    auto map = driver::make_driver<std::uint64_t, std::uint64_t>(
        name, two_workers());
    std::vector<Op<std::uint64_t, std::uint64_t>> warm;
    for (std::uint64_t i = 0; i < 5000; ++i) {
      warm.push_back(Op<std::uint64_t, std::uint64_t>::insert(i, 1));
    }
    map->run(warm);

    // Drive a hot set (late-inserted, hence initially deep).
    for (int round = 0; round < 10; ++round) {
      std::vector<Op<std::uint64_t, std::uint64_t>> hot;
      for (std::uint64_t k = 4990; k < 4998; ++k) {
        hot.push_back(Op<std::uint64_t, std::uint64_t>::search(k));
      }
      map->run(hot);
    }
    for (std::uint64_t k = 4990; k < 4998; ++k) {
      ASSERT_TRUE(map->depth_of(k).has_value()) << name << " key " << k;
      EXPECT_LE(*map->depth_of(k), 2u) << name << " key " << k;
    }
    // An untouched early key sits deeper than every hot key.
    ASSERT_TRUE(map->depth_of(4000).has_value()) << name;
    EXPECT_GT(*map->depth_of(4000), 2u) << name;
  }
  // Non-adjusting backends have no recency depth.
  auto avl =
      driver::make_driver<std::uint64_t, std::uint64_t>("avl", two_workers());
  avl->insert(1, 1);
  EXPECT_FALSE(avl->depth_of(1).has_value());
}

}  // namespace
}  // namespace pwss
