// pwss_serve — the `--serve` CLI mode: exposes any registered backend
// (including sharded:* and --durability modes) over the wire protocol.
//
//   ./pwss_serve --backend=m2 --serve=127.0.0.1:7070
//   ./pwss_serve --backend=sharded:m1 --shards=8 --socket=/tmp/pwss.sock
//   ./pwss_serve --backend=m1 --durability=sync --durability-dir=data
//                --serve=:7070 --socket=/tmp/pwss.sock --stats   (one line)
//
// The process prints one "serving ..." line to stdout (with the ACTUAL
// TCP port — `--serve=127.0.0.1:0` binds a kernel-assigned one, which is
// how scripts and CI get a free port race-free), then serves until
// SIGINT/SIGTERM. Shutdown is graceful: listeners close, in-flight ops
// complete, responses flush, and only then does the process exit —
// with --stats printing the combined driver + wire counter snapshot,
// and --validate running the deep validators on the final state.

#include <csignal>
#include <cstdio>
#include <cstdint>

#include "driver/cli.hpp"
#include "driver/registry.hpp"
#include "net/server.hpp"

int main(int argc, char** argv) {
  using K = std::uint64_t;
  using V = std::uint64_t;
  const auto cli = pwss::driver::parse<K, V>(argc, argv, {"m2"});
  if (cli.serve_addr.empty() && cli.socket_path.empty()) {
    std::fprintf(stderr,
                 "%s: need --serve=[host]:port and/or --socket=PATH "
                 "(try --help)\n",
                 argv[0]);
    return 2;
  }
  if (cli.backends.size() != 1) {
    std::fprintf(stderr, "%s: serve exposes exactly one backend, got %zu\n",
                 argv[0], cli.backends.size());
    return 2;
  }

  // Block the shutdown signals BEFORE any thread exists so every thread
  // (scheduler workers, the reactor) inherits the mask and the sigwait
  // below is the one place they are delivered.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  auto driver = pwss::driver::make_driver<K, V>(cli.backends.front(),
                                                cli.driver);
  pwss::net::ServerConfig cfg;
  cfg.tcp_addr = cli.serve_addr;
  cfg.unix_path = cli.socket_path;
  cfg.pipeline_window = cli.net_window == 0 ? 1 : cli.net_window;
  pwss::net::Server server(*driver, cfg);

  std::printf("serving %s", driver->name().c_str());
  if (!cli.serve_addr.empty()) {
    const auto addr = pwss::net::TcpAddr::parse(cli.serve_addr);
    std::printf(" tcp=%s:%u", addr.host.c_str(),
                static_cast<unsigned>(server.tcp_port()));
  }
  if (!cli.socket_path.empty()) {
    std::printf(" unix=%s", cli.socket_path.c_str());
  }
  std::printf(" window=%u\n", cli.net_window == 0 ? 1u : cli.net_window);
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::fprintf(stderr, "pwss_serve: signal %d, draining connections...\n",
               sig);
  server.stop();

  pwss::driver::DriverStats stats = driver->stats();
  server.add_stats(stats);
  int rc = 0;
  if (cli.validate) {
    driver->quiesce();
    const std::string report = driver->validate();
    if (!report.empty()) {
      std::fprintf(stderr, "validate[%s]: %s\n", driver->name().c_str(),
                   report.c_str());
      rc = 1;
    } else {
      std::fprintf(stderr, "validate[%s]: ok\n", driver->name().c_str());
    }
  }
  if (cli.print_stats) pwss::driver::print_stats(*driver, stats);
  return rc;
}
